"""Conservative backfill.

The paper's backfill (§2.1) is the conservative variant: the scheduler
walks the queue in arrival order; a job that fits *and* would not delay
any job ahead of it starts immediately, and every job that cannot start
is given a reservation at the earliest time the availability profile
admits it.  Reservations exist only to protect earlier arrivals from
later ones — a reserved job may still start before its reservation when
jobs finish early, because the whole profile is rebuilt from scratch at
every scheduling pass from the *current* estimates.

The availability profile is a step function of free nodes over future
time, seeded from the estimated remaining run times of the running jobs.
Estimate quality therefore matters much more here than for LWF: a hole in
the profile is only as real as the estimates that shaped it (§4).

Hot path
--------
Because the profile is pass-local state, two exact shortcuts apply:

- **Seeding** batches the running jobs' releases through
  :meth:`AvailabilityProfile.rebuild` (sort once, build the step arrays
  in one append-only sweep) instead of one O(n) ``list.insert`` per
  release, and reuses one scratch profile object across passes.
- **Early exit**: reservations carved for jobs that cannot start are
  discarded at the end of the pass, so the walk may stop as soon as no
  remaining job can start *now*.  Free nodes at ``now`` only shrink as
  the walk carves, so once they drop below the minimum node request of
  the remaining queue suffix, no later job can have an earliest start of
  ``now`` — the selected set is provably unchanged.

Both are equivalence-gated by ``tests/test_simulator_parity.py`` against
the reference engine in :mod:`repro.scheduler.reference`.
"""

from __future__ import annotations

import bisect
import math
from typing import Sequence

from repro.scheduler.policies.base import Policy

__all__ = ["AvailabilityProfile", "BackfillPolicy"]

_INF = math.inf


class AvailabilityProfile:
    """Free-node count as a step function of time.

    Maintained as parallel arrays ``times`` / ``free`` where ``free[i]``
    holds on ``[times[i], times[i+1])`` and the last segment extends to
    infinity.  Supports the operations backfill needs: find the earliest
    start for an ``(nodes, duration)`` request, carve a committed
    allocation out of the profile — or both at once via :meth:`reserve`,
    which finds and carves in a single walk — plus bulk construction
    from a batch of releases (:meth:`rebuild` / :meth:`from_releases`).
    """

    __slots__ = ("total_nodes", "times", "free")

    def __init__(self, start_time: float, free_nodes: int, total_nodes: int) -> None:
        if not 0 <= free_nodes <= total_nodes:
            raise ValueError(
                f"free_nodes {free_nodes} outside [0, {total_nodes}]"
            )
        self.total_nodes = total_nodes
        self.times: list[float] = [start_time]
        self.free: list[int] = [free_nodes]

    @classmethod
    def from_releases(
        cls,
        start_time: float,
        free_nodes: int,
        total_nodes: int,
        releases: Sequence[tuple[float, int]],
    ) -> "AvailabilityProfile":
        """Profile seeded from ``(time, nodes)`` release pairs in one sweep."""
        profile = cls(start_time, free_nodes, total_nodes)
        profile.rebuild(start_time, free_nodes, releases)
        return profile

    def rebuild(
        self,
        start_time: float,
        free_nodes: int,
        releases: Sequence[tuple[float, int]],
    ) -> None:
        """Reset to ``free_nodes`` at ``start_time`` and apply ``releases``.

        Equivalent to a fresh profile plus one :meth:`add_release` per
        pair, but append-then-merge: the releases are sorted once and the
        step arrays built left to right with no mid-list inserts —
        O(n log n) for n releases instead of O(n²).  Reusing the same
        profile object across scheduling passes also recycles the arrays.
        """
        if not 0 <= free_nodes <= self.total_nodes:
            raise ValueError(
                f"free_nodes {free_nodes} outside [0, {self.total_nodes}]"
            )
        times = self.times
        free = self.free
        times.clear()
        free.clear()
        times.append(start_time)
        free.append(free_nodes)
        if not releases:
            return
        total = self.total_nodes
        current = free_nodes
        for time, nodes in sorted(releases):
            if nodes <= 0:
                raise ValueError(f"release of {nodes} nodes")
            current += nodes
            if current > total:
                raise RuntimeError("availability profile exceeds machine capacity")
            if time <= start_time:
                # Releases at/before the origin fold into the first step.
                for i in range(len(free)):
                    free[i] += nodes
                continue
            if time == times[-1]:
                free[-1] = current
            else:
                times.append(time)
                free.append(current)

    def add_release(self, time: float, nodes: int) -> None:
        """Record ``nodes`` becoming free at ``time`` (a running job ending)."""
        if nodes <= 0:
            raise ValueError(f"release of {nodes} nodes")
        time = max(time, self.times[0])
        i = self._ensure_breakpoint(time)
        for j in range(i, len(self.free)):
            self.free[j] += nodes
            if self.free[j] > self.total_nodes:
                raise RuntimeError("availability profile exceeds machine capacity")

    def _ensure_breakpoint(self, time: float) -> int:
        """Insert a breakpoint at ``time`` if absent; return its index."""
        i = bisect.bisect_left(self.times, time)
        if i < len(self.times) and self.times[i] == time:
            return i
        if i == 0:
            raise ValueError(f"time {time} precedes profile start {self.times[0]}")
        self.times.insert(i, time)
        self.free.insert(i, self.free[i - 1])
        return i

    def earliest_start(
        self, nodes: int, duration: float, *, not_before: float | None = None
    ) -> float:
        """Earliest time ``nodes`` nodes stay free for ``duration``.

        Scans anchor candidates (segment starts, or ``not_before`` inside
        a segment); always succeeds inside the backfill policy because
        the final segment has all running jobs finished.  ``not_before``
        floors the result — FCFS-style in-order planning uses it to keep
        start times monotone in arrival order.
        """
        anchor, _, _ = self._find_slot(nodes, duration, not_before)
        return anchor

    def _find_slot(
        self, nodes: int, duration: float, not_before: float | None
    ) -> tuple[float, int, int]:
        """``(anchor, i, j)``: earliest feasible anchor, its segment index,
        and the first segment index at/after ``anchor + duration``."""
        if nodes > self.total_nodes:
            raise ValueError(
                f"request for {nodes} nodes exceeds machine size {self.total_nodes}"
            )
        if duration < 0:
            raise ValueError(f"negative duration {duration}")
        times = self.times
        free = self.free
        n = len(times)
        floor = times[0]
        if not_before is None or not_before <= floor:
            # Hot path (every backfill reservation): the anchor is always
            # the candidate segment's own start, so the per-segment floor
            # clamp and next-breakpoint lookahead vanish from the scan.
            i = 0
            while i < n:
                if free[i] < nodes:
                    i += 1
                    continue
                anchor = times[i]
                end = anchor + duration
                j = i + 1
                while j < n and times[j] < end:
                    if free[j] < nodes:
                        # Restart after the violation — nothing between
                        # can host the anchor.
                        i = j + 1
                        break
                    j += 1
                else:
                    return anchor, i, j
            raise RuntimeError("no feasible start found (profile never clears)")
        floor = not_before
        i = 0
        while i < n:
            t = times[i]
            anchor = t if t > floor else floor
            if i + 1 < n and times[i + 1] <= anchor:
                i += 1
                continue
            if free[i] < nodes:
                i += 1
                continue
            end = anchor + duration
            ok = True
            j = i + 1
            while j < n and times[j] < end:
                if free[j] < nodes:
                    ok = False
                    # Restart the scan at the first segment after the
                    # violation — nothing between can host the anchor.
                    i = j + 1
                    break
                j += 1
            if ok:
                return anchor, i, j
        raise RuntimeError("no feasible start found (profile never clears)")

    def reserve(
        self, nodes: int, duration: float, *, not_before: float | None = None
    ) -> float:
        """Find the earliest start and carve it, in one walk.

        Exactly equivalent to ``start = earliest_start(...)`` followed by
        ``carve(start, duration, nodes)``, but the carve reuses the
        feasibility scan's segment indices instead of re-bisecting, and
        skips the overcommit re-checks the scan already guarantees.
        """
        anchor, i, j = self._find_slot(nodes, duration, not_before)
        if duration <= 0:
            return anchor
        times = self.times
        free = self.free
        if times[i] != anchor:
            i += 1
            times.insert(i, anchor)
            free.insert(i, free[i - 1])
            j += 1
        end = anchor + duration
        if end == anchor:
            # Degenerate positive duration that underflows at the
            # anchor's magnitude: the end breakpoint coincides with the
            # anchor (already ensured above) and no segment loses nodes.
            return anchor
        if math.isfinite(end):
            if j >= len(times) or times[j] != end:
                times.insert(j, end)
                free.insert(j, free[j - 1])
        else:
            j = len(times)
        for k in range(i, j):
            free[k] -= nodes
        return anchor

    def carve(
        self, start: float, duration: float, nodes: int, *, clamp: bool = False
    ) -> None:
        """Commit an allocation of ``nodes`` over ``[start, start+duration)``.

        With ``clamp=True`` free counts floor at zero instead of raising
        — used for advance reservations, whose windows may conflict with
        the *estimated* occupancy of running jobs without being wrong
        (estimates are beliefs; the reservation will simply wait).
        """
        if duration <= 0:
            return
        end = start + duration
        i = self._ensure_breakpoint(start)
        j = self._ensure_breakpoint(end) if math.isfinite(end) else len(self.times)
        for k in range(i, j):
            self.free[k] -= nodes
            if self.free[k] < 0:
                if clamp:
                    self.free[k] = 0
                else:
                    raise RuntimeError("profile carve went negative: overcommitted")

    def free_at(self, time: float) -> int:
        """Free nodes at ``time`` (for tests/inspection)."""
        i = bisect.bisect_right(self.times, time) - 1
        if i < 0:
            raise ValueError(f"time {time} precedes profile start")
        return self.free[i]


class BackfillPolicy(Policy):
    """Conservative backfill: every queued job holds a profile reservation."""

    name = "Backfill"

    #: Floor on estimated durations when carving reservations; avoids
    #: zero-length holes from degenerate estimates.  Kept equal to the
    #: simulator's minimum run time so a forward simulation over
    #: predicted durations is a fixed point of this policy's replanning
    #: (see repro.waitpred.fast).
    min_duration: float = 1e-6

    def __init__(self) -> None:
        # Scratch profile reused across passes (never carries state
        # between calls — select() rebuilds it from the view each time).
        self._profile: AvailabilityProfile | None = None
        # job_id -> last reserved start, maintained only while tracing so
        # reservation events report moves rather than every replan.
        self._last_reserved: dict[int, float] = {}

    def _seeded_profile(self, view) -> AvailabilityProfile:
        """The pass's availability profile, rebuilt in the scratch object."""
        now = view.now
        releases = [
            (now + view.remaining(rj), rj.job.nodes) for rj in view.running
        ]
        for ares in getattr(view, "active_reservations", ()):
            end = ares.end_time
            releases.append((end if end > now else now, ares.nodes))
        profile = self._profile
        if profile is None or profile.total_nodes != view.total_nodes:
            profile = AvailabilityProfile(now, view.free_nodes, view.total_nodes)
            self._profile = profile
        profile.rebuild(now, view.free_nodes, releases)
        for pres in getattr(view, "reservations", ()):
            profile.carve(
                max(pres.effective_start, now),
                pres.duration,
                pres.nodes,
                clamp=True,
            )
        return profile

    def select(self, view) -> Sequence:
        queued = list(view.queued)  # arrival order
        if not queued:
            return []
        tracer = getattr(view, "tracer", None)
        if tracer is not None:
            return self._select_traced(view, queued, tracer)
        # Suffix minima of node requests: suffix_min[k] is the smallest
        # request among queued[k:], the early-exit threshold below.
        n = len(queued)
        suffix_min = [0] * n
        smallest = queued[-1].job.nodes
        for k in range(n - 1, -1, -1):
            nd = queued[k].job.nodes
            if nd < smallest:
                smallest = nd
            suffix_min[k] = smallest
        free_now = view.free_nodes
        if free_now < suffix_min[0]:
            # Not even the narrowest queued job fits right now, so the
            # pass starts nothing; skip building the profile entirely
            # (its reservations would be discarded anyway).
            return []
        now = view.now
        min_duration = self.min_duration
        estimate = view.estimate
        profile = self._seeded_profile(view)
        reserve = profile.reserve
        started = []
        for k in range(n):
            if free_now < suffix_min[k]:
                break  # no remaining job can start now; see module docstring
            qj = queued[k]
            duration = estimate(qj)
            if duration < min_duration:
                duration = min_duration
            start = reserve(qj.job.nodes, duration)
            if start <= now:
                started.append(qj)
                free_now -= qj.job.nodes
        return started

    def _select_traced(self, view, queued, tracer) -> Sequence:
        """The tracing walk: same selections, full reservation event stream.

        The early exits in :meth:`select` only skip reservations that are
        discarded at the end of the pass (jobs that cannot start *now*),
        so dropping them here cannot change the selected set — it merely
        makes every queued job's reservation observable.  Events report
        the reservation *life-cycle*: ``reservation_placed`` the first
        time a job gets a future start, ``reservation_shifted`` whenever
        a replan moves it.
        """
        now = view.now
        min_duration = self.min_duration
        profile = self._seeded_profile(view)
        last = self._last_reserved
        started = []
        for qj in queued:
            duration = view.estimate(qj)
            if duration < min_duration:
                duration = min_duration
            start = profile.reserve(qj.job.nodes, duration)
            if start <= now:
                started.append(qj)
                last.pop(qj.job_id, None)
                continue
            prev = last.get(qj.job_id)
            if prev is None:
                tracer.emit(
                    "reservation_placed",
                    sim_time=now,
                    job_id=qj.job_id,
                    policy=self.name,
                    cause="backfill_replan",
                    start_s=start,
                    nodes=qj.job.nodes,
                )
            elif start != prev:
                tracer.emit(
                    "reservation_shifted",
                    sim_time=now,
                    job_id=qj.job_id,
                    policy=self.name,
                    cause="backfill_replan",
                    start_s=start,
                    previous_start_s=prev,
                    nodes=qj.job.nodes,
                )
            last[qj.job_id] = start
        return started
