"""Conservative backfill.

The paper's backfill (§2.1) is the conservative variant: the scheduler
walks the queue in arrival order; a job that fits *and* would not delay
any job ahead of it starts immediately, and every job that cannot start
is given a reservation at the earliest time the availability profile
admits it.  Reservations exist only to protect earlier arrivals from
later ones — a reserved job may still start before its reservation when
jobs finish early, because the whole profile is rebuilt from scratch at
every scheduling pass from the *current* estimates.

The availability profile is a step function of free nodes over future
time, seeded from the estimated remaining run times of the running jobs.
Estimate quality therefore matters much more here than for LWF: a hole in
the profile is only as real as the estimates that shaped it (§4).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.scheduler.policies.base import Policy

__all__ = ["AvailabilityProfile", "BackfillPolicy"]

_INF = math.inf


class AvailabilityProfile:
    """Free-node count as a step function of time.

    Maintained as parallel arrays ``times`` / ``free`` where ``free[i]``
    holds on ``[times[i], times[i+1])`` and the last segment extends to
    infinity.  Supports the two operations backfill needs: find the
    earliest start for an ``(nodes, duration)`` request, and carve a
    committed allocation out of the profile.
    """

    def __init__(self, start_time: float, free_nodes: int, total_nodes: int) -> None:
        if not 0 <= free_nodes <= total_nodes:
            raise ValueError(
                f"free_nodes {free_nodes} outside [0, {total_nodes}]"
            )
        self.total_nodes = total_nodes
        self.times: list[float] = [start_time]
        self.free: list[int] = [free_nodes]

    def add_release(self, time: float, nodes: int) -> None:
        """Record ``nodes`` becoming free at ``time`` (a running job ending)."""
        if nodes <= 0:
            raise ValueError(f"release of {nodes} nodes")
        time = max(time, self.times[0])
        i = self._ensure_breakpoint(time)
        for j in range(i, len(self.free)):
            self.free[j] += nodes
            if self.free[j] > self.total_nodes:
                raise RuntimeError("availability profile exceeds machine capacity")

    def _ensure_breakpoint(self, time: float) -> int:
        """Insert a breakpoint at ``time`` if absent; return its index."""
        import bisect

        i = bisect.bisect_left(self.times, time)
        if i < len(self.times) and self.times[i] == time:
            return i
        if i == 0:
            raise ValueError(f"time {time} precedes profile start {self.times[0]}")
        self.times.insert(i, time)
        self.free.insert(i, self.free[i - 1])
        return i

    def earliest_start(
        self, nodes: int, duration: float, *, not_before: float | None = None
    ) -> float:
        """Earliest time ``nodes`` nodes stay free for ``duration``.

        Scans anchor candidates (segment starts, or ``not_before`` inside
        a segment); always succeeds inside the backfill policy because
        the final segment has all running jobs finished.  ``not_before``
        floors the result — FCFS-style in-order planning uses it to keep
        start times monotone in arrival order.
        """
        if nodes > self.total_nodes:
            raise ValueError(
                f"request for {nodes} nodes exceeds machine size {self.total_nodes}"
            )
        if duration < 0:
            raise ValueError(f"negative duration {duration}")
        n = len(self.times)
        floor = self.times[0] if not_before is None else max(not_before, self.times[0])
        i = 0
        while i < n:
            anchor = max(self.times[i], floor)
            if i + 1 < n and self.times[i + 1] <= anchor:
                i += 1
                continue
            if self.free[i] < nodes:
                i += 1
                continue
            end = anchor + duration
            ok = True
            j = i + 1
            while j < n and self.times[j] < end:
                if self.free[j] < nodes:
                    ok = False
                    # Restart the scan at the first segment after the
                    # violation — nothing between can host the anchor.
                    i = j + 1
                    break
                j += 1
            if ok:
                return anchor
        raise RuntimeError("no feasible start found (profile never clears)")

    def carve(
        self, start: float, duration: float, nodes: int, *, clamp: bool = False
    ) -> None:
        """Commit an allocation of ``nodes`` over ``[start, start+duration)``.

        With ``clamp=True`` free counts floor at zero instead of raising
        — used for advance reservations, whose windows may conflict with
        the *estimated* occupancy of running jobs without being wrong
        (estimates are beliefs; the reservation will simply wait).
        """
        if duration <= 0:
            return
        end = start + duration
        i = self._ensure_breakpoint(start)
        j = self._ensure_breakpoint(end) if math.isfinite(end) else len(self.times)
        for k in range(i, j):
            self.free[k] -= nodes
            if self.free[k] < 0:
                if clamp:
                    self.free[k] = 0
                else:
                    raise RuntimeError("profile carve went negative: overcommitted")

    def free_at(self, time: float) -> int:
        """Free nodes at ``time`` (for tests/inspection)."""
        import bisect

        i = bisect.bisect_right(self.times, time) - 1
        if i < 0:
            raise ValueError(f"time {time} precedes profile start")
        return self.free[i]


class BackfillPolicy(Policy):
    """Conservative backfill: every queued job holds a profile reservation."""

    name = "Backfill"

    #: Floor on estimated durations when carving reservations; avoids
    #: zero-length holes from degenerate estimates.  Kept equal to the
    #: simulator's minimum run time so a forward simulation over
    #: predicted durations is a fixed point of this policy's replanning
    #: (see repro.waitpred.fast).
    min_duration: float = 1e-6

    def select(self, view) -> Sequence:
        profile = AvailabilityProfile(view.now, view.free_nodes, view.total_nodes)
        for rj in view.running:
            profile.add_release(view.now + view.remaining(rj), rj.job.nodes)
        # Reservations currently holding nodes release at known times.
        for ares in getattr(view, "active_reservations", ()):
            profile.add_release(max(ares.end_time, view.now), ares.nodes)
        # Advance reservations (if the simulator carries any) are carved
        # out first so no queued job is planned into their windows.
        for pres in getattr(view, "reservations", ()):
            profile.carve(
                max(pres.effective_start, view.now),
                pres.duration,
                pres.nodes,
                clamp=True,
            )
        started = []
        for qj in view.queued:  # arrival order
            duration = max(view.estimate(qj), self.min_duration)
            start = profile.earliest_start(qj.job.nodes, duration)
            profile.carve(start, duration, qj.job.nodes)
            if start <= view.now:
                started.append(qj)
        return started
