"""Conservative backfill.

The paper's backfill (§2.1) is the conservative variant: the scheduler
walks the queue in arrival order; a job that fits *and* would not delay
any job ahead of it starts immediately, and every job that cannot start
is given a reservation at the earliest time the availability profile
admits it.  Reservations exist only to protect earlier arrivals from
later ones — a reserved job may still start before its reservation when
jobs finish early, because the whole profile is rebuilt from scratch at
every scheduling pass from the *current* estimates.

The availability profile is a step function of free nodes over future
time, seeded from the estimated remaining run times of the running jobs.
Estimate quality therefore matters much more here than for LWF: a hole in
the profile is only as real as the estimates that shaped it (§4).

Hot path
--------
Because the profile is pass-local state, two exact shortcuts apply:

- **Seeding** batches the running jobs' releases through
  :meth:`AvailabilityProfile.rebuild` (sort once, build the step arrays
  in one append-only sweep) instead of one O(n) ``list.insert`` per
  release, and reuses one scratch profile object across passes.
- **Early exit**: reservations carved for jobs that cannot start are
  discarded at the end of the pass, so the walk may stop as soon as no
  remaining job can start *now*.  Free nodes at ``now`` only shrink as
  the walk carves, so once they drop below the minimum node request of
  the remaining queue suffix, no later job can have an earliest start of
  ``now`` — the selected set is provably unchanged.

Both are equivalence-gated by ``tests/test_simulator_parity.py`` against
the reference engine in :mod:`repro.scheduler.reference`.
"""

from __future__ import annotations

import bisect
import math
from itertools import repeat
from operator import itemgetter
from typing import Sequence

import numpy as np

from repro.scheduler.policies.base import Policy

__all__ = ["AvailabilityProfile", "BatchAvailabilityProfile", "BackfillPolicy"]

_INF = math.inf

# Hoisted iterators for the C-speed provenance seed in
# BackfillPolicy._seed_origin: release-time extractor and an endless
# supply of the "running_job" tag (itertools.repeat is stateless, so the
# shared instance is safe to re-zip every pass).
_RELEASE_TIME = itemgetter(0)
_RUNNING_JOB_TAGS = repeat("running_job")
_UNKNOWN_BINDING = ("unknown", None)


class AvailabilityProfile:
    """Free-node count as a step function of time.

    Maintained as parallel arrays ``times`` / ``free`` where ``free[i]``
    holds on ``[times[i], times[i+1])`` and the last segment extends to
    infinity.  Supports the operations backfill needs: find the earliest
    start for an ``(nodes, duration)`` request, carve a committed
    allocation out of the profile — or both at once via :meth:`reserve`,
    which finds and carves in a single walk — plus bulk construction
    from a batch of releases (:meth:`rebuild` / :meth:`from_releases`).
    """

    __slots__ = ("total_nodes", "times", "free")

    def __init__(self, start_time: float, free_nodes: int, total_nodes: int) -> None:
        if not 0 <= free_nodes <= total_nodes:
            raise ValueError(
                f"free_nodes {free_nodes} outside [0, {total_nodes}]"
            )
        self.total_nodes = total_nodes
        self.times: list[float] = [start_time]
        self.free: list[int] = [free_nodes]

    @classmethod
    def from_releases(
        cls,
        start_time: float,
        free_nodes: int,
        total_nodes: int,
        releases: Sequence[tuple[float, int]],
    ) -> "AvailabilityProfile":
        """Profile seeded from ``(time, nodes)`` release pairs in one sweep."""
        profile = cls(start_time, free_nodes, total_nodes)
        profile.rebuild(start_time, free_nodes, releases)
        return profile

    def rebuild(
        self,
        start_time: float,
        free_nodes: int,
        releases: Sequence[tuple[float, int]],
    ) -> None:
        """Reset to ``free_nodes`` at ``start_time`` and apply ``releases``.

        Equivalent to a fresh profile plus one :meth:`add_release` per
        pair, but append-then-merge: the releases are sorted once and the
        step arrays built left to right with no mid-list inserts —
        O(n log n) for n releases instead of O(n²).  Reusing the same
        profile object across scheduling passes also recycles the arrays.
        """
        if not 0 <= free_nodes <= self.total_nodes:
            raise ValueError(
                f"free_nodes {free_nodes} outside [0, {self.total_nodes}]"
            )
        times = self.times
        free = self.free
        times.clear()
        free.clear()
        times.append(start_time)
        free.append(free_nodes)
        if not releases:
            return
        total = self.total_nodes
        current = free_nodes
        for time, nodes in sorted(releases):
            if nodes <= 0:
                raise ValueError(f"release of {nodes} nodes")
            current += nodes
            if current > total:
                raise RuntimeError("availability profile exceeds machine capacity")
            if time <= start_time:
                # Releases at/before the origin fold into the first step.
                for i in range(len(free)):
                    free[i] += nodes
                continue
            if time == times[-1]:
                free[-1] = current
            else:
                times.append(time)
                free.append(current)

    def add_release(self, time: float, nodes: int) -> None:
        """Record ``nodes`` becoming free at ``time`` (a running job ending)."""
        if nodes <= 0:
            raise ValueError(f"release of {nodes} nodes")
        time = max(time, self.times[0])
        i = self._ensure_breakpoint(time)
        for j in range(i, len(self.free)):
            self.free[j] += nodes
            if self.free[j] > self.total_nodes:
                raise RuntimeError("availability profile exceeds machine capacity")

    def _ensure_breakpoint(self, time: float) -> int:
        """Insert a breakpoint at ``time`` if absent; return its index."""
        i = bisect.bisect_left(self.times, time)
        if i < len(self.times) and self.times[i] == time:
            return i
        if i == 0:
            raise ValueError(f"time {time} precedes profile start {self.times[0]}")
        self.times.insert(i, time)
        self.free.insert(i, self.free[i - 1])
        return i

    def earliest_start(
        self, nodes: int, duration: float, *, not_before: float | None = None
    ) -> float:
        """Earliest time ``nodes`` nodes stay free for ``duration``.

        Scans anchor candidates (segment starts, or ``not_before`` inside
        a segment); always succeeds inside the backfill policy because
        the final segment has all running jobs finished.  ``not_before``
        floors the result — FCFS-style in-order planning uses it to keep
        start times monotone in arrival order.
        """
        anchor, _, _ = self._find_slot(nodes, duration, not_before)
        return anchor

    def _find_slot(
        self, nodes: int, duration: float, not_before: float | None
    ) -> tuple[float, int, int]:
        """``(anchor, i, j)``: earliest feasible anchor, its segment index,
        and the first segment index at/after ``anchor + duration``."""
        if nodes > self.total_nodes:
            raise ValueError(
                f"request for {nodes} nodes exceeds machine size {self.total_nodes}"
            )
        if duration < 0:
            raise ValueError(f"negative duration {duration}")
        times = self.times
        free = self.free
        n = len(times)
        floor = times[0]
        if not_before is None or not_before <= floor:
            # Hot path (every backfill reservation): the anchor is always
            # the candidate segment's own start, so the per-segment floor
            # clamp and next-breakpoint lookahead vanish from the scan.
            i = 0
            while i < n:
                if free[i] < nodes:
                    i += 1
                    continue
                anchor = times[i]
                end = anchor + duration
                j = i + 1
                while j < n and times[j] < end:
                    if free[j] < nodes:
                        # Restart after the violation — nothing between
                        # can host the anchor.
                        i = j + 1
                        break
                    j += 1
                else:
                    return anchor, i, j
            raise RuntimeError("no feasible start found (profile never clears)")
        floor = not_before
        i = 0
        while i < n:
            t = times[i]
            anchor = t if t > floor else floor
            if i + 1 < n and times[i + 1] <= anchor:
                i += 1
                continue
            if free[i] < nodes:
                i += 1
                continue
            end = anchor + duration
            ok = True
            j = i + 1
            while j < n and times[j] < end:
                if free[j] < nodes:
                    ok = False
                    # Restart the scan at the first segment after the
                    # violation — nothing between can host the anchor.
                    i = j + 1
                    break
                j += 1
            if ok:
                return anchor, i, j
        raise RuntimeError("no feasible start found (profile never clears)")

    def reserve(
        self, nodes: int, duration: float, *, not_before: float | None = None
    ) -> float:
        """Find the earliest start and carve it, in one walk.

        Exactly equivalent to ``start = earliest_start(...)`` followed by
        ``carve(start, duration, nodes)``, but the carve reuses the
        feasibility scan's segment indices instead of re-bisecting, and
        skips the overcommit re-checks the scan already guarantees.
        """
        anchor, i, j = self._find_slot(nodes, duration, not_before)
        if duration <= 0:
            return anchor
        times = self.times
        free = self.free
        if times[i] != anchor:
            i += 1
            times.insert(i, anchor)
            free.insert(i, free[i - 1])
            j += 1
        end = anchor + duration
        if end == anchor:
            # Degenerate positive duration that underflows at the
            # anchor's magnitude: the end breakpoint coincides with the
            # anchor (already ensured above) and no segment loses nodes.
            return anchor
        if math.isfinite(end):
            if j >= len(times) or times[j] != end:
                times.insert(j, end)
                free.insert(j, free[j - 1])
        else:
            j = len(times)
        for k in range(i, j):
            free[k] -= nodes
        return anchor

    def carve(
        self, start: float, duration: float, nodes: int, *, clamp: bool = False
    ) -> None:
        """Commit an allocation of ``nodes`` over ``[start, start+duration)``.

        With ``clamp=True`` free counts floor at zero instead of raising
        — used for advance reservations, whose windows may conflict with
        the *estimated* occupancy of running jobs without being wrong
        (estimates are beliefs; the reservation will simply wait).
        """
        if duration <= 0:
            return
        end = start + duration
        i = self._ensure_breakpoint(start)
        j = self._ensure_breakpoint(end) if math.isfinite(end) else len(self.times)
        for k in range(i, j):
            self.free[k] -= nodes
            if self.free[k] < 0:
                if clamp:
                    self.free[k] = 0
                else:
                    raise RuntimeError("profile carve went negative: overcommitted")

    def free_at(self, time: float) -> int:
        """Free nodes at ``time`` (for tests/inspection)."""
        i = bisect.bisect_right(self.times, time) - 1
        if i < 0:
            raise ValueError(f"time {time} precedes profile start")
        return self.free[i]


class BatchAvailabilityProfile:
    """``S`` availability profiles advanced in lock-step (sample axis first).

    The many-worlds Monte-Carlo engine (:mod:`repro.waitpred.manyworlds`)
    forward-plans the same queue over hundreds of sampled run-time
    worlds.  Each world's free-node step function differs — the sampled
    durations shift every breakpoint — but the *sequence of operations*
    is identical: seed from the running jobs' releases, then reserve one
    queued job at a time.  This class stores the step functions as
    padded structure-of-arrays state

    - ``times``  — ``(S, M)`` float64, breakpoint instants per world,
      strictly increasing over each world's first ``count[s]`` columns
      and padded with ``+inf``;
    - ``free``   — ``(S, M)`` int64, free nodes on ``[times[i], times[i+1])``
      (padding columns hold ``total_nodes`` so they can never look like
      capacity violations);
    - ``count``  — ``(S,)`` live-segment counts,

    so one :meth:`reserve` call finds *and carves* the earliest feasible
    slot in every world at once with a handful of vectorized array
    passes instead of ``S`` Python scans.

    Semantics are bit-identical to running ``S`` independent scalar
    :class:`AvailabilityProfile` objects through the same call sequence:
    the feasibility rule, anchor arithmetic (``end = anchor + duration``
    in float64), duplicate-breakpoint merging, and the degenerate
    ``end == anchor`` underflow behaviour all mirror the scalar code
    path, and ``tests/test_waitpred_manyworlds.py`` property-tests the
    equivalence operation by operation.
    """

    __slots__ = (
        "total_nodes",
        "n_worlds",
        "times",
        "free",
        "count",
        "_scr_tmp",
        "_scr_f",
        "_scr_b",
        "_scr_b2",
        "_rows",
    )

    def __init__(
        self,
        start_time: float,
        free_nodes: int,
        total_nodes: int,
        n_worlds: int,
        *,
        capacity: int | None = None,
    ) -> None:
        if not 0 <= free_nodes <= total_nodes:
            raise ValueError(f"free_nodes {free_nodes} outside [0, {total_nodes}]")
        if n_worlds < 1:
            raise ValueError(f"n_worlds must be >= 1, got {n_worlds}")
        self.total_nodes = total_nodes
        self.n_worlds = n_worlds
        width = max(1, capacity or 0)
        self.times = np.full((n_worlds, width), np.inf)
        self.free = np.full((n_worlds, width), total_nodes, dtype=np.int64)
        self.times[:, 0] = float(start_time)
        self.free[:, 0] = int(free_nodes)
        self.count = np.ones(n_worlds, dtype=np.int64)
        self._drop_scratch()

    def _drop_scratch(self) -> None:
        """Invalidate capacity-shaped scratch state (lazily rebuilt)."""
        self._scr_tmp = None
        self._scr_f = None
        self._scr_b = None
        self._scr_b2 = None
        self._rows = np.arange(self.n_worlds)

    @classmethod
    def from_releases(
        cls,
        start_time: float,
        free_nodes: int,
        total_nodes: int,
        release_times: np.ndarray,
        release_nodes: np.ndarray,
        *,
        capacity: int | None = None,
    ) -> "BatchAvailabilityProfile":
        """Profiles seeded from per-world release times in one sweep.

        ``release_times`` is ``(S, R)`` — release ``r`` happens at a
        different instant in each world — while ``release_nodes`` is
        ``(R,)``: the node counts are world-invariant (they come from
        the same running jobs).  Semantically mirrors
        :meth:`AvailabilityProfile.rebuild`, including the fold of
        releases at/before the origin into the first step; equal-time
        releases are kept as zero-width twin columns that each carry
        the run's cumulative total, a refinement of the scalar
        profile's merged step function that leaves every query — free
        counts, anchors, violation instants — with the scalar values.
        """
        release_times = np.ascontiguousarray(release_times, dtype=np.float64)
        release_nodes = np.asarray(release_nodes, dtype=np.int64)
        if release_times.ndim != 2:
            raise ValueError("release_times must be (n_worlds, n_releases)")
        n_worlds, n_rel = release_times.shape
        if release_nodes.shape != (n_rel,):
            raise ValueError("release_nodes must be (n_releases,)")
        if np.any(release_nodes <= 0):
            raise ValueError("release of <= 0 nodes")
        profile = cls(
            start_time,
            free_nodes,
            total_nodes,
            n_worlds,
            capacity=max(n_rel + 1, capacity or 0),
        )
        if n_rel == 0:
            return profile
        if free_nodes + int(release_nodes.sum()) > total_nodes:
            raise RuntimeError("availability profile exceeds machine capacity")
        # Releases at/before the origin fold into the first step.
        early = release_times <= start_time
        base = free_nodes + (release_nodes[None, :] * early).sum(axis=1)
        late_times = np.where(early, np.inf, release_times)
        # Order within an equal-time run never surfaces (the merge below
        # keeps only each run's cumulative total), so the sort need not
        # be stable.
        order = np.argsort(late_times, axis=1)
        rows = np.arange(n_worlds)[:, None]
        t_sorted = late_times[rows, order]
        n_sorted = np.where(np.isfinite(t_sorted), release_nodes[order], 0)
        cum = base[:, None] + np.cumsum(n_sorted, axis=1)
        # Merge equal-time releases: the last of each run carries the
        # cumulative count, exactly like the scalar rebuild.  Duplicates
        # are adjacent after the sort, so a cumsum of the keep mask gives
        # each survivor its compacted column and a single scatter places
        # them; the constructor's padding covers the dropped tail.
        fin = np.isfinite(t_sorted)
        last = fin.copy()
        last[:, :-1] &= t_sorted[:, :-1] != t_sorted[:, 1:]
        profile.times[:, 0] = start_time
        profile.free[:, 0] = base
        if last.all():
            # No early releases, no equal-time runs: two slice copies
            # place every column.
            profile.times[:, 1 : n_rel + 1] = t_sorted
            profile.free[:, 1 : n_rel + 1] = cum
            profile.count = np.full(n_worlds, n_rel + 1, dtype=np.int64)
            return profile
        # Equal-time releases stay as zero-width twin columns instead of
        # being compacted (a per-row shift would need fancy-index
        # scatters).  Every member of a run carries the run's cumulative
        # total — the nearest run-last at/after it, which is a reverse
        # running minimum because ``cum`` is nondecreasing — so any
        # column of a run answers free-count queries for its instant
        # and the zero-width twins are skipped or neutralized by the
        # value-based scans (a twin never widens a segment, and the
        # run-last column supplies the violation marker at its time).
        free_all = np.where(last, cum, total_nodes)
        np.minimum.accumulate(free_all[:, ::-1], axis=1, out=free_all[:, ::-1])
        # Early-release columns sort to the far right as +inf with free
        # ``total_nodes`` — exactly the padding values, so writing them
        # through keeps the padding invariant.
        profile.times[:, 1 : n_rel + 1] = t_sorted
        profile.free[:, 1 : n_rel + 1] = free_all
        profile.count = fin.sum(axis=1) + 1
        return profile

    def _ensure_capacity(self) -> int:
        """Keep >= 2 spare columns so one reserve never overruns.

        Returns the active view width ``max(count) + 2`` — wide enough
        that every world sees at least two padding columns, which the
        vectorized scans rely on (padding is always feasible, so a world
        whose profile never clears surfaces as an ``inf`` anchor).
        Growth is geometric so a long reserve sequence costs amortized
        O(1) reallocations per reserve.
        """
        need = int(self.count.max()) + 2
        n_worlds, width = self.times.shape
        if width >= need:
            return need
        grow = max(need - width, width // 2, 8)
        self.times = np.concatenate(
            [self.times, np.full((n_worlds, grow), np.inf)], axis=1
        )
        self.free = np.concatenate(
            [self.free, np.full((n_worlds, grow), self.total_nodes, dtype=np.int64)],
            axis=1,
        )
        self._drop_scratch()
        return need

    def earliest_start(
        self,
        nodes: int,
        durations: np.ndarray | float,
        *,
        not_before: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-world earliest start for ``(nodes, durations[s])`` requests."""
        durations = np.broadcast_to(
            np.asarray(durations, dtype=np.float64), (self.n_worlds,)
        )
        if not_before is None and bool((durations > 0).all()):
            width = self._ensure_capacity()
            anchor, _ = self._find_nofloor(nodes, durations, width)
            return anchor
        anchor, _, _, _ = self._find_slots(nodes, durations, not_before)
        return anchor

    def _find_slots(
        self,
        nodes: int,
        durations: np.ndarray | float,
        not_before: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(anchor, idx, end, durations)`` across all worlds.

        The closed-form equivalent of the scalar ``_find_slot`` scan:
        segment ``i`` can anchor the request iff it survives the floor
        clamp (``times[i+1] > anchor_i``), has ``free[i] >= nodes``, and
        the next capacity violation at/after ``i+1`` happens no earlier
        than ``anchor_i + duration``.  The scalar scan's restart logic
        is an optimization over exactly this rule, so taking the first
        feasible segment per world reproduces its answer.
        """
        if nodes > self.total_nodes:
            raise ValueError(
                f"request for {nodes} nodes exceeds machine size {self.total_nodes}"
            )
        times = self.times
        free = self.free
        n_worlds, width = times.shape
        durations = np.broadcast_to(
            np.asarray(durations, dtype=np.float64), (n_worlds,)
        )
        if np.any(durations < 0):
            raise ValueError("negative duration")
        if not_before is None:
            floor = times[:, 0]
        else:
            floor = np.maximum(
                np.broadcast_to(np.asarray(not_before, dtype=np.float64), (n_worlds,)),
                times[:, 0],
            )
        anchor_cand = np.maximum(times, floor[:, None])
        pad_col = np.full((n_worlds, 1), np.inf)
        nxt_times = np.concatenate([times[:, 1:], pad_col], axis=1)
        alive = nxt_times > anchor_cand
        viol_time = np.where(free < nodes, times, np.inf)
        next_viol = np.flip(
            np.minimum.accumulate(np.flip(viol_time, axis=1), axis=1), axis=1
        )
        viol_after = np.concatenate([next_viol[:, 1:], pad_col], axis=1)
        feasible = alive & (free >= nodes) & (
            viol_after >= anchor_cand + durations[:, None]
        )
        if not feasible.any(axis=1).all():
            raise RuntimeError("no feasible start found (profile never clears)")
        idx = feasible.argmax(axis=1)
        anchor = anchor_cand[np.arange(n_worlds), idx]
        if not np.isfinite(anchor).all():
            raise RuntimeError("no feasible start found (profile never clears)")
        return anchor, idx, anchor + durations, durations

    def _scratch(self) -> None:
        """Lazily (re)build capacity-shaped scratch buffers."""
        if self._scr_tmp is None or self._scr_tmp.shape != self.times.shape:
            shape = self.times.shape
            self._scr_tmp = np.empty(shape)
            self._scr_f = np.empty(shape, dtype=np.int64)
            self._scr_b = np.empty(shape, dtype=bool)
            self._scr_b2 = np.empty(shape, dtype=bool)

    def reserve(
        self,
        nodes: int,
        durations: np.ndarray | float,
        *,
        not_before: np.ndarray | None = None,
    ) -> np.ndarray:
        """Find the earliest start and carve it, in every world at once.

        Returns the ``(S,)`` anchor vector.  One call replaces ``S``
        scalar ``reserve`` calls.  Unfloored requests with strictly
        positive durations — every reservation of the backfill walk —
        take :meth:`_reserve_nofloor`, a fused find-and-carve over an
        active-width view; floored or degenerate requests fall back to
        the general gather-based splice.
        """
        width = self._ensure_capacity()
        durations = np.broadcast_to(
            np.asarray(durations, dtype=np.float64), (self.n_worlds,)
        )
        if not_before is None and bool((durations > 0).all()):
            return self._reserve_nofloor(nodes, durations, width)
        return self._reserve_floored(nodes, durations, not_before)

    def _find_nofloor(
        self, nodes: int, durations: np.ndarray, w: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Lean feasibility search: no floor, strictly positive durations.

        Segment ``i`` is feasible iff ``free[i] >= nodes`` and
        ``suffixmin(viol)[i] >= times[i] + duration``, where ``viol[j]``
        is ``times[j]`` when ``free[j] < nodes`` else ``+inf``.
        Including column ``i`` itself in the suffix is free — a violating
        segment can never satisfy the inequality for positive durations —
        except when ``times[i] + duration`` rounds back to ``times[i]``,
        which the explicit ``free >= nodes`` term covers.  Returns the
        ``(S,)`` anchor vector plus the anchoring column per world.
        """
        if nodes > self.total_nodes:
            raise ValueError(
                f"request for {nodes} nodes exceeds machine size {self.total_nodes}"
            )
        self._scratch()
        F = self.free[:, :w]
        B = self._scr_b[:, :w]
        np.greater_equal(F, nodes, out=B)  # segment has room
        # No column before the earliest has-room column can anchor any
        # world, and the suffix-min only looks rightward, so the rest of
        # the search runs on the tail view from there.  Padding keeps at
        # least one has-room column per world, so the argmax is a real
        # hit and a never-clearing world surfaces as an ``inf`` anchor.
        c0 = int(B.argmax(axis=1).min())
        T = self.times[:, c0:w]
        Bt = B[:, c0:]
        TMP = self._scr_tmp[:, c0:w]
        B2 = self._scr_b2[:, c0:w]
        viol = np.where(Bt, np.inf, T)  # violation instants
        np.minimum.accumulate(viol[:, ::-1], axis=1, out=viol[:, ::-1])
        np.add(T, durations[:, None], out=TMP)  # candidate end instants
        np.greater_equal(viol, TMP, out=B2)  # next violation at/after end
        B2 &= Bt
        idx = B2.argmax(axis=1) + c0
        anchor = self.times[self._rows, idx]
        if not np.isfinite(anchor).all():
            raise RuntimeError("no feasible start found (profile never clears)")
        return anchor, idx

    def _reserve_nofloor(
        self, nodes: int, durations: np.ndarray, w: int
    ) -> np.ndarray:
        """The backfill hot path: no floor, strictly positive durations.

        With no ``not_before`` every candidate anchor is a segment's own
        start, so no anchor breakpoint is ever inserted and the whole
        find-and-carve collapses to ~15 vectorized passes over an
        active-width view (``w = max(count) + 2``), reusing persistent
        scratch buffers:

        - feasibility comes from :meth:`_find_nofloor`'s closed form;
        - the splice and the carve only ever touch columns at or after
          the earliest anchor across worlds (``c0 = idx.min()``), so
          both run on that tail view — on a busy machine the anchors sit
          deep in the profile and the tail is a fraction of the width;
        - the (at most one) end breakpoint per world is spliced by an
          in-place masked shift: copy the tail into scratch, shift it
          back one column right where the mask says so, scatter the end
          instants.  The shift duplicates the split segment's free count
          into the new column automatically;
        - the carve mask compares values (``anchor <= t < end``), not
          column indices, so spliced and unspliced worlds share it.
        """
        anchor, idx = self._find_nofloor(nodes, durations, w)
        rows = self._rows
        c0 = int(idx.min())
        T = self.times[:, c0:w]
        F = self.free[:, c0:w]
        B = self._scr_b[:, c0:w]
        B2 = self._scr_b2[:, c0:w]
        end = anchor + durations
        # --- splice the end breakpoint where it is missing ---
        # Every anchor column is >= c0 and T[:, c0] <= anchor < end, so
        # the first tail column never shifts and the argmax below always
        # lands on a padding column at the latest.
        np.greater_equal(T, end[:, None], out=B)
        end_idx = B.argmax(axis=1)
        ins = T[rows, end_idx] != end
        if ins.any():
            B &= ins[:, None]  # columns at/after the insertion point
            tmp_t = self._scr_tmp[:, c0 : w - 1]
            tmp_f = self._scr_f[:, c0 : w - 1]
            np.copyto(tmp_t, T[:, :-1])
            np.copyto(tmp_f, F[:, :-1])
            np.copyto(T[:, 1:], tmp_t, where=B[:, 1:])
            np.copyto(F[:, 1:], tmp_f, where=B[:, 1:])
            sel = np.flatnonzero(ins)
            T[sel, end_idx[sel]] = end[sel]
            self.count += ins
        # --- carve [anchor, end) ---
        np.greater_equal(T, anchor[:, None], out=B)
        np.less(T, end[:, None], out=B2)
        B &= B2
        # Unmasked multiply-subtract: masked integer ufunc loops are much
        # slower than two vectorized passes, and the result is identical.
        carve = self._scr_f[:, c0:w]
        np.multiply(B, nodes, out=carve)
        np.subtract(F, carve, out=F)
        return anchor

    def _reserve_floored(
        self,
        nodes: int,
        durations: np.ndarray,
        not_before: np.ndarray | None,
    ) -> np.ndarray:
        """General find-and-carve: per-world floors, up to two splices.

        The carve rebuilds the padded arrays with a single gather that
        splices in the (at most two) new breakpoints each world needs.
        """
        anchor, idx, end, durations = self._find_slots(nodes, durations, not_before)
        times = self.times
        free = self.free
        count = self.count
        n_worlds, width = times.shape
        rows = np.arange(n_worlds)
        carving = durations > 0
        if not carving.any():
            return anchor
        # Which worlds need an anchor breakpoint / an end breakpoint.
        need_a = carving & (times[rows, idx] != anchor)
        grew = end > anchor  # False when duration underflows at the anchor
        finite_end = np.isfinite(end)
        # First segment at/after the end instant (padding is +inf, and
        # capacity keeps count <= width - 2, so the index stays in range).
        end_idx = (times < np.where(finite_end, end, np.inf)[:, None]).sum(axis=1)
        end_idx = np.minimum(end_idx, width - 1)
        ins_e = carving & grew & finite_end & (times[rows, end_idx] != end)
        pos_a = idx + 1
        pos_e = end_idx + need_a
        cols = np.arange(width)[None, :]
        shift_a = need_a[:, None] & (cols >= pos_a[:, None])
        shift_e = ins_e[:, None] & (cols >= pos_e[:, None])
        src = cols - shift_a.astype(np.int64) - shift_e.astype(np.int64)
        new_times = times[rows[:, None], src]
        new_free = free[rows[:, None], src]
        at_a = need_a[:, None] & (cols == pos_a[:, None])
        at_e = ins_e[:, None] & (cols == pos_e[:, None])
        new_times = np.where(at_a, anchor[:, None], new_times)
        new_times = np.where(at_e, end[:, None], new_times)
        new_count = count + need_a + ins_e
        # Carve [anchor segment, end breakpoint) in the new layout.
        carve_from = idx + need_a
        carve_to = np.where(finite_end, end_idx + need_a, new_count)
        carve = (
            (carving & grew)[:, None]
            & (cols >= carve_from[:, None])
            & (cols < carve_to[:, None])
        )
        new_free = new_free - nodes * carve
        pad = cols >= new_count[:, None]
        new_times = np.where(pad, np.inf, new_times)
        new_free = np.where(pad, self.total_nodes, new_free)
        self.times = new_times
        self.free = new_free
        self.count = new_count
        return anchor

    def free_at(self, time: np.ndarray | float) -> np.ndarray:
        """Per-world free nodes at ``time`` (for tests/inspection)."""
        time = np.broadcast_to(np.asarray(time, dtype=np.float64), (self.n_worlds,))
        idx = (self.times <= time[:, None]).sum(axis=1) - 1
        if np.any(idx < 0):
            raise ValueError("time precedes profile start")
        return self.free[np.arange(self.n_worlds), idx]


class BackfillPolicy(Policy):
    """Conservative backfill: every queued job holds a profile reservation."""

    name = "Backfill"

    #: Floor on estimated durations when carving reservations; avoids
    #: zero-length holes from degenerate estimates.  Kept equal to the
    #: simulator's minimum run time so a forward simulation over
    #: predicted durations is a fixed point of this policy's replanning
    #: (see repro.waitpred.fast).
    min_duration: float = 1e-6

    def __init__(self) -> None:
        # Scratch profile reused across passes (never carries state
        # between calls — select() rebuilds it from the view each time).
        self._profile: AvailabilityProfile | None = None
        # job_id -> last reserved start, maintained only while tracing so
        # reservation events report moves rather than every replan.
        self._last_reserved: dict[int, float] = {}
        # job_id -> last (blocker_kind, blocker_id), maintained only under
        # provenance so binding events report moves rather than every pass.
        self._last_binding: dict[int, tuple] = {}
        # The release pairs the current pass's profile was seeded from,
        # stashed so _seed_origin can attribute them without re-deriving
        # each running job's release time (view.remaining is not free).
        self._seed_releases: list[tuple[float, int]] = []

    def _seeded_profile(self, view) -> AvailabilityProfile:
        """The pass's availability profile, rebuilt in the scratch object."""
        now = view.now
        releases = [
            (now + view.remaining(rj), rj.job.nodes) for rj in view.running
        ]
        for ares in getattr(view, "active_reservations", ()):
            end = ares.end_time
            releases.append((end if end > now else now, ares.nodes))
        self._seed_releases = releases
        profile = self._profile
        if profile is None or profile.total_nodes != view.total_nodes:
            profile = AvailabilityProfile(now, view.free_nodes, view.total_nodes)
            self._profile = profile
        profile.rebuild(now, view.free_nodes, releases)
        for pres in getattr(view, "reservations", ()):
            carve_start = max(pres.effective_start, now)
            profile.carve(carve_start, pres.duration, pres.nodes, clamp=True)
        return profile

    def _seed_origin(self, view) -> dict:
        """Attribution map for the pass's seeded capacity-raising instants.

        Maps release time -> ``(blocker_kind, blocker_id)`` for every
        instant :meth:`_seeded_profile` seeded the profile with, in the
        same order (so same-instant collisions resolve identically).
        Reservation anchors always land on such an instant — or on an
        earlier queued job's reservation end, which
        :meth:`_attribute_bindings` layers on top — so looking an anchor
        up names the binding constraint.  Built only on passes that
        moved a reservation: most passes move nothing and never need
        attribution, which keeps provenance mode within its overhead
        budget.  Release times
        come from the pairs stashed by :meth:`_seeded_profile` (running
        jobs first, then active reservations, in seeding order), not
        from re-deriving ``view.remaining``.
        """
        now = view.now
        releases = self._seed_releases
        running = view.running
        if hasattr(running, "ids"):
            ids = running.ids()
        else:  # reference views expose plain sequences
            ids = [rj.job_id for rj in running]
        # dict(zip(...)) pairs release times with ("running_job", id)
        # tags entirely in C; zip stops at len(ids), leaving the active
        # reservations' trailing entries to the loop below.
        origin: dict = dict(
            zip(
                map(_RELEASE_TIME, releases),
                zip(_RUNNING_JOB_TAGS, ids),
            )
        )
        n_running = len(ids)
        for ares, (t, _) in zip(
            getattr(view, "active_reservations", ()), releases[n_running:]
        ):
            origin[t] = ("active_reservation", ares.reservation.res_id)
        for pres in getattr(view, "reservations", ()):
            carve_start = max(pres.effective_start, now)
            origin[carve_start + pres.duration] = (
                "advance_reservation", pres.reservation.res_id,
            )
        return origin

    def select(self, view) -> Sequence:
        queued = list(view.queued)  # arrival order
        if not queued:
            return []
        tracer = getattr(view, "tracer", None)
        if tracer is not None:
            return self._select_traced(view, queued, tracer)
        # Suffix minima of node requests: suffix_min[k] is the smallest
        # request among queued[k:], the early-exit threshold below.
        n = len(queued)
        suffix_min = [0] * n
        smallest = queued[-1].job.nodes
        for k in range(n - 1, -1, -1):
            nd = queued[k].job.nodes
            if nd < smallest:
                smallest = nd
            suffix_min[k] = smallest
        free_now = view.free_nodes
        if free_now < suffix_min[0]:
            # Not even the narrowest queued job fits right now, so the
            # pass starts nothing; skip building the profile entirely
            # (its reservations would be discarded anyway).
            return []
        now = view.now
        min_duration = self.min_duration
        estimate = view.estimate
        profile = self._seeded_profile(view)
        reserve = profile.reserve
        started = []
        for k in range(n):
            if free_now < suffix_min[k]:
                break  # no remaining job can start now; see module docstring
            qj = queued[k]
            duration = estimate(qj)
            if duration < min_duration:
                duration = min_duration
            start = reserve(qj.job.nodes, duration)
            if start <= now:
                started.append(qj)
                free_now -= qj.job.nodes
        return started

    def _select_traced(self, view, queued, tracer) -> Sequence:
        """The tracing walk: same selections, full reservation event stream.

        The early exits in :meth:`select` only skip reservations that are
        discarded at the end of the pass (jobs that cannot start *now*),
        so dropping them here cannot change the selected set — it merely
        makes every queued job's reservation observable.  Events report
        the reservation *life-cycle*: ``reservation_placed`` the first
        time a job gets a future start, ``reservation_shifted`` whenever
        a replan moves it.

        Under the provenance knob the walk additionally attributes every
        *moved* reservation to its binding constraint.  A reservation
        that did not move keeps its binding — its anchor is the same
        instant — so attribution runs as a per-pass epilogue
        (:meth:`_attribute_bindings`) over just the moved jobs, and the
        many passes that move nothing pay only for recording that fact.
        ``reservation_binding`` is emitted change-only per job;
        ``backfill_hole_used`` marks each out-of-order start with the
        earlier blocked arrival whose reservation opened the hole.
        """
        now = view.now
        min_duration = self.min_duration
        prov = getattr(view, "provenance_tracer", None)
        profile = self._seeded_profile(view)
        last = self._last_reserved
        first_blocked: tuple[int, float] | None = None
        started = []
        started_ids: set[int] = set()
        moved: list[tuple[int, int, float]] = []
        for k, qj in enumerate(queued):
            duration = view.estimate(qj)
            if duration < min_duration:
                duration = min_duration
            job = qj.job
            jid = job.job_id  # hoisted: QueuedJob.job_id is a property
            start = profile.reserve(job.nodes, duration)
            prev = last.get(jid)
            if start <= now:
                started.append(qj)
                if prev is not None:
                    del last[jid]
                if prov is not None:
                    started_ids.add(jid)
                    if first_blocked is not None:
                        prov.emit(
                            "backfill_hole_used",
                            sim_time=now,
                            job_id=jid,
                            policy=self.name,
                            hole_start_s=now,
                            hole_end_s=first_blocked[1],
                            ahead_job_id=first_blocked[0],
                            nodes=job.nodes,
                        )
                continue
            if prov is not None and first_blocked is None:
                first_blocked = (jid, start)
            if prev is None:
                tracer.emit(
                    "reservation_placed",
                    sim_time=now,
                    job_id=jid,
                    policy=self.name,
                    cause="backfill_replan",
                    start_s=start,
                    nodes=job.nodes,
                )
            elif start == prev:
                continue  # reservation unchanged; nothing to record
            else:
                tracer.emit(
                    "reservation_shifted",
                    sim_time=now,
                    job_id=jid,
                    policy=self.name,
                    cause="backfill_replan",
                    start_s=start,
                    previous_start_s=prev,
                    nodes=job.nodes,
                )
            last[jid] = start
            if prov is not None:
                moved.append((k, jid, start))
        if moved:
            self._attribute_bindings(view, queued, moved, started_ids, prov)
        return started

    def _attribute_bindings(self, view, queued, moved, started_ids, prov) -> None:
        """Attribute each moved reservation to its binding constraint.

        Runs once per pass that placed or shifted at least one
        reservation.  The anchor :meth:`AvailabilityProfile.reserve`
        returned for a moved job is always a capacity-raising instant,
        and the origin map — seeded instants (:meth:`_seed_origin`) plus
        the reservation ends of every queued job ahead of it — names
        what frees up there.  The walk already recorded everything the
        map needs: a job that started this pass releases its nodes at
        ``now + duration`` (its anchor was exactly ``now``), and a
        blocked job's reservation end is ``_last_reserved[jid] +
        duration`` (the walk just refreshed it); durations re-read the
        estimate cache the walk just warmed — directly rather than via
        :meth:`SchedulerView.estimate`, so detail mode's per-call
        ``cache_hit`` events and hit counters see only the walk's own
        lookups.  The replay visits the queue prefix up to the last
        moved job, resolving each moved job against the map state at
        its own walk position, and emits ``reservation_binding``
        change-only per job.
        """
        now = view.now
        min_duration = self.min_duration
        cache = view._cache  # pass-warm: the walk estimated every prefix job
        last = self._last_reserved
        binding = self._last_binding
        origin = self._seed_origin(view)
        mi = 0
        next_k = moved[0][0]
        n_moved = len(moved)
        for k, qj in enumerate(queued):
            jid = qj.job.job_id
            duration = cache[jid]
            if duration < min_duration:
                duration = min_duration
            if k == next_k:
                start = moved[mi][2]
                kind, bid = origin.get(start, _UNKNOWN_BINDING)
                if binding.get(jid) != (kind, bid):
                    binding[jid] = (kind, bid)
                    if bid is None:
                        prov.emit(
                            "reservation_binding",
                            sim_time=now,
                            job_id=jid,
                            policy=self.name,
                            start_s=start,
                            blocker_kind=kind,
                        )
                    else:
                        prov.emit(
                            "reservation_binding",
                            sim_time=now,
                            job_id=jid,
                            policy=self.name,
                            start_s=start,
                            blocker_kind=kind,
                            blocker_id=bid,
                        )
                mi += 1
                if mi == n_moved:
                    return
                next_k = moved[mi][0]
                origin[start + duration] = ("queued_reservation", jid)
                continue
            if jid in started_ids:
                origin[now + duration] = ("running_job", jid)
            else:
                prev = last.get(jid)
                if prev is not None:
                    origin[prev + duration] = ("queued_reservation", jid)
