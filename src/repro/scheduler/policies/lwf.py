"""Least-work-first.

LWF orders the queue by increasing *estimated work* — requested nodes
multiplied by the estimated wall-clock run time (paper §2.1) — and starts
every job that fits, taken in that order.  Unlike FCFS it does not block
behind a job that cannot run: small-work jobs flow around a stalled large
one (this greedy variant is what lets the paper's LWF reach the same
utilization as backfill in Tables 10-15 while posting lower mean waits;
a blocking variant idles the machine whenever the least-work job is
wide).  The reordering itself is the entire mechanism, which is why the
paper finds LWF only needs to know whether a job is "big" or "small" and
tolerates coarse estimates (§4).

Ties in estimated work break by arrival order, then job id, so replays
are deterministic.
"""

from __future__ import annotations

from typing import Sequence

from repro.scheduler.policies.base import Policy

__all__ = ["LWFPolicy"]


class LWFPolicy(Policy):
    """Least-work-first: start every fitting job in ascending estimated-work order."""

    name = "LWF"

    def select(self, view) -> Sequence:
        queued = list(view.queued)
        if not queued:
            return []
        free = view.free_nodes
        # Nothing fits when even the narrowest job exceeds the free
        # nodes — skip the estimate lookups and the sort entirely.
        if free < min(qj.job.nodes for qj in queued):
            return []
        estimate = view.estimate
        order = sorted(
            queued,
            key=lambda qj: (
                qj.job.nodes * estimate(qj),
                qj.job.submit_time,
                qj.job.job_id,
            ),
        )
        started = []
        for qj in order:
            if qj.job.nodes <= free:
                started.append(qj)
                free -= qj.job.nodes
        return started
