"""Least-work-first.

LWF orders the queue by increasing *estimated work* — requested nodes
multiplied by the estimated wall-clock run time (paper §2.1) — and starts
every job that fits, taken in that order.  Unlike FCFS it does not block
behind a job that cannot run: small-work jobs flow around a stalled large
one (this greedy variant is what lets the paper's LWF reach the same
utilization as backfill in Tables 10-15 while posting lower mean waits;
a blocking variant idles the machine whenever the least-work job is
wide).  The reordering itself is the entire mechanism, which is why the
paper finds LWF only needs to know whether a job is "big" or "small" and
tolerates coarse estimates (§4).

Ties in estimated work break by arrival order, then job id, so replays
are deterministic.
"""

from __future__ import annotations

from typing import Sequence

from repro.scheduler.policies.base import Policy, ReleaseAttributor

__all__ = ["LWFPolicy"]


class LWFPolicy(Policy):
    """Least-work-first: start every fitting job in ascending estimated-work order."""

    name = "LWF"

    def __init__(self) -> None:
        # job_id -> last (blocker_kind, blocker_id); provenance-only
        # state so start_blocked events report moves, not every pass.
        self._last_blocked: dict[int, tuple] = {}

    def select(self, view) -> Sequence:
        queued = list(view.queued)
        if not queued:
            return []
        prov = getattr(view, "provenance_tracer", None)
        if prov is not None:
            return self._select_traced(view, queued, prov)
        free = view.free_nodes
        # Nothing fits when even the narrowest job exceeds the free
        # nodes — skip the estimate lookups and the sort entirely.
        if free < min(qj.job.nodes for qj in queued):
            return []
        estimate = view.estimate
        order = sorted(
            queued,
            key=lambda qj: (
                qj.job.nodes * estimate(qj),
                qj.job.submit_time,
                qj.job.job_id,
            ),
        )
        started = []
        for qj in order:
            if qj.job.nodes <= free:
                started.append(qj)
                free -= qj.job.nodes
        return started

    def _select_traced(self, view, queued, prov) -> Sequence:
        """Selection-identical walk emitting ``start_blocked`` provenance.

        Drops the nothing-fits early exit (which only skips work, never
        changes the selected set) so every blocked job is attributed:
        greedy LWF has no head-of-line rule, so each unstarted job is
        bound by the release that first clears its own node deficit
        against the free nodes remaining when the walk reaches it.
        """
        free = view.free_nodes
        now = view.now
        estimate = view.estimate
        order = sorted(
            queued,
            key=lambda qj: (
                qj.job.nodes * estimate(qj),
                qj.job.submit_time,
                qj.job.job_id,
            ),
        )
        last = self._last_blocked
        started = []
        attr = None
        for qj in order:
            if qj.job.nodes <= free:
                started.append(qj)
                free -= qj.job.nodes
                last.pop(qj.job_id, None)
                if attr is not None:
                    attr.add(
                        now + estimate(qj), qj.job.nodes,
                        "running_job", qj.job_id,
                    )
                continue
            if attr is None:
                attr = ReleaseAttributor(view)
                for sj in started:
                    attr.add(
                        now + estimate(sj), sj.job.nodes,
                        "running_job", sj.job_id,
                    )
            kind, bid = attr.binding(qj.job.nodes, free)
            if last.get(qj.job_id) != (kind, bid):
                last[qj.job_id] = (kind, bid)
                if bid is None:
                    prov.emit(
                        "start_blocked", sim_time=now, job_id=qj.job_id,
                        policy=self.name, blocker_kind=kind, free_nodes=free,
                    )
                else:
                    prov.emit(
                        "start_blocked", sim_time=now, job_id=qj.job_id,
                        policy=self.name, blocker_kind=kind, blocker_id=bid,
                        free_nodes=free,
                    )
        return started
