"""Scheduling policies: FCFS, least-work-first, conservative backfill."""

from repro.scheduler.policies.base import Policy
from repro.scheduler.policies.fcfs import FCFSPolicy
from repro.scheduler.policies.lwf import LWFPolicy
from repro.scheduler.policies.backfill import (
    AvailabilityProfile,
    BackfillPolicy,
    BatchAvailabilityProfile,
)
from repro.scheduler.policies.easy import EASYBackfillPolicy

__all__ = [
    "Policy",
    "FCFSPolicy",
    "LWFPolicy",
    "BackfillPolicy",
    "EASYBackfillPolicy",
    "AvailabilityProfile",
    "BatchAvailabilityProfile",
]
