"""EASY (aggressive) backfill — Lifka's ANL/IBM SP scheduler [11].

The paper's backfill is *conservative*: every queued job holds a
reservation.  EASY, the variant the paper cites as the origin of
max-run-time estimates, reserves **only the head of the queue**: any
other job may start immediately if it fits and will not delay the
head's reservation.  Jobs deeper in the queue enjoy no protection, so
EASY backfills more aggressively at the cost of weaker progress
guarantees for mid-queue jobs.

Included as an ablation: the reservation-depth choice is the main
design axis of backfill schedulers, and comparing the two shows how
much of the predictor-accuracy effect (§4) is due to reservation
machinery versus ordering.
"""

from __future__ import annotations

from typing import Sequence

from repro.scheduler.policies.backfill import AvailabilityProfile
from repro.scheduler.policies.base import Policy

__all__ = ["EASYBackfillPolicy"]


class EASYBackfillPolicy(Policy):
    """EASY (aggressive) backfill: only the queue head holds a reservation."""

    name = "EASY"

    #: Same degenerate-estimate floor as the conservative variant.
    min_duration: float = 1e-6

    def select(self, view) -> Sequence:
        queued = list(view.queued)  # arrival order
        if not queued:
            return []
        # EASY starts jobs only at `now`, so if even the narrowest queued
        # job exceeds the free nodes nothing can start and the profile
        # (whose reservations are pass-local) need not be built at all.
        if view.free_nodes < min(qj.job.nodes for qj in queued):
            return []
        releases = [
            (view.now + view.remaining(rj), rj.job.nodes) for rj in view.running
        ]
        releases.extend(
            (max(ares.end_time, view.now), ares.nodes)
            for ares in getattr(view, "active_reservations", ())
        )
        profile = AvailabilityProfile.from_releases(
            view.now, view.free_nodes, view.total_nodes, releases
        )
        for pres in getattr(view, "reservations", ()):
            profile.carve(
                max(pres.effective_start, view.now),
                pres.duration,
                pres.nodes,
                clamp=True,
            )

        started = []
        # Start jobs in arrival order while the profile lets them run
        # immediately for their whole estimated duration (absent
        # reservations this is exactly "enough nodes are free now").
        i = 0
        while i < len(queued):
            qj = queued[i]
            duration = max(view.estimate(qj), self.min_duration)
            if profile.earliest_start(qj.job.nodes, duration) > view.now:
                break
            profile.carve(view.now, duration, qj.job.nodes)
            started.append(qj)
            i += 1
        if i >= len(queued):
            return started

        # The first blocked job becomes the head: reserve it at the
        # earliest time the profile admits.  Only the head is protected.
        head = queued[i]
        head_duration = max(view.estimate(head), self.min_duration)
        head_start = profile.earliest_start(head.job.nodes, head_duration)
        profile.carve(head_start, head_duration, head.job.nodes)

        # Backfill: any later job that can run now without delaying the
        # head (or a reservation window).
        for qj in queued[i + 1 :]:
            duration = max(view.estimate(qj), self.min_duration)
            if profile.earliest_start(qj.job.nodes, duration) <= view.now:
                profile.carve(view.now, duration, qj.job.nodes)
                started.append(qj)
        return started
