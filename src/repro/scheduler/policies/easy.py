"""EASY (aggressive) backfill — Lifka's ANL/IBM SP scheduler [11].

The paper's backfill is *conservative*: every queued job holds a
reservation.  EASY, the variant the paper cites as the origin of
max-run-time estimates, reserves **only the head of the queue**: any
other job may start immediately if it fits and will not delay the
head's reservation.  Jobs deeper in the queue enjoy no protection, so
EASY backfills more aggressively at the cost of weaker progress
guarantees for mid-queue jobs.

Included as an ablation: the reservation-depth choice is the main
design axis of backfill schedulers, and comparing the two shows how
much of the predictor-accuracy effect (§4) is due to reservation
machinery versus ordering.
"""

from __future__ import annotations

from typing import Sequence

from repro.scheduler.policies.backfill import AvailabilityProfile
from repro.scheduler.policies.base import Policy

__all__ = ["EASYBackfillPolicy"]


class EASYBackfillPolicy(Policy):
    """EASY (aggressive) backfill: only the queue head holds a reservation."""

    name = "EASY"

    #: Same degenerate-estimate floor as the conservative variant.
    min_duration: float = 1e-6

    def __init__(self) -> None:
        # Provenance-only change-detection state: job_id -> last
        # (blocker_kind, blocker_id) for the head's reservation binding
        # and for the unprotected jobs' start_blocked attribution.
        self._last_binding: dict[int, tuple] = {}
        self._last_blocked: dict[int, tuple] = {}

    def select(self, view) -> Sequence:
        queued = list(view.queued)  # arrival order
        if not queued:
            return []
        now = view.now
        # EASY starts jobs only at `now`, so if even the narrowest queued
        # job exceeds the free nodes nothing can start and the profile
        # (whose reservations are pass-local) need not be built at all.
        # Kept under provenance too: change-only emission tolerates the
        # skipped pass (attribution catches up at the next selecting one).
        if view.free_nodes < min(qj.job.nodes for qj in queued):
            return []
        prov = getattr(view, "provenance_tracer", None)
        origin: dict | None = {} if prov is not None else None
        if origin is None:
            releases = [
                (now + view.remaining(rj), rj.job.nodes) for rj in view.running
            ]
            releases.extend(
                (max(ares.end_time, now), ares.nodes)
                for ares in getattr(view, "active_reservations", ())
            )
        else:
            releases = []
            for rj in view.running:
                t = now + view.remaining(rj)
                releases.append((t, rj.job.nodes))
                origin[t] = ("running_job", rj.job_id)
            for ares in getattr(view, "active_reservations", ()):
                t = max(ares.end_time, now)
                releases.append((t, ares.nodes))
                origin[t] = ("active_reservation", ares.reservation.res_id)
        profile = AvailabilityProfile.from_releases(
            now, view.free_nodes, view.total_nodes, releases
        )
        for pres in getattr(view, "reservations", ()):
            carve_start = max(pres.effective_start, now)
            profile.carve(carve_start, pres.duration, pres.nodes, clamp=True)
            if origin is not None:
                origin[carve_start + pres.duration] = (
                    "advance_reservation", pres.reservation.res_id,
                )

        started = []
        # Start jobs in arrival order while the profile lets them run
        # immediately for their whole estimated duration (absent
        # reservations this is exactly "enough nodes are free now").
        i = 0
        while i < len(queued):
            qj = queued[i]
            duration = max(view.estimate(qj), self.min_duration)
            if profile.earliest_start(qj.job.nodes, duration) > now:
                break
            profile.carve(now, duration, qj.job.nodes)
            started.append(qj)
            if prov is not None:
                self._last_binding.pop(qj.job_id, None)
                self._last_blocked.pop(qj.job_id, None)
                origin[now + duration] = ("running_job", qj.job_id)
            i += 1
        if i >= len(queued):
            return started

        # The first blocked job becomes the head: reserve it at the
        # earliest time the profile admits.  Only the head is protected.
        head = queued[i]
        head_duration = max(view.estimate(head), self.min_duration)
        head_start = profile.earliest_start(head.job.nodes, head_duration)
        profile.carve(head_start, head_duration, head.job.nodes)
        if prov is not None:
            self._emit_binding(prov, now, head, head_start, origin)
            origin[head_start + head_duration] = (
                "queued_reservation", head.job_id,
            )

        # Backfill: any later job that can run now without delaying the
        # head (or a reservation window).
        for qj in queued[i + 1 :]:
            duration = max(view.estimate(qj), self.min_duration)
            est_start = profile.earliest_start(qj.job.nodes, duration)
            if est_start <= now:
                profile.carve(now, duration, qj.job.nodes)
                started.append(qj)
                if prov is not None:
                    self._last_binding.pop(qj.job_id, None)
                    self._last_blocked.pop(qj.job_id, None)
                    prov.emit(
                        "backfill_hole_used",
                        sim_time=now,
                        job_id=qj.job_id,
                        policy=self.name,
                        hole_start_s=now,
                        hole_end_s=head_start,
                        ahead_job_id=head.job_id,
                        nodes=qj.job.nodes,
                    )
                    origin[now + duration] = ("running_job", qj.job_id)
            elif prov is not None:
                # Unprotected job: attribute the anchor of its would-be
                # start (often the head's own carve end).
                kind, bid = origin.get(est_start, ("unknown", None))
                if self._last_blocked.get(qj.job_id) != (kind, bid):
                    self._last_blocked[qj.job_id] = (kind, bid)
                    if bid is None:
                        prov.emit(
                            "start_blocked", sim_time=now, job_id=qj.job_id,
                            policy=self.name, blocker_kind=kind,
                        )
                    else:
                        prov.emit(
                            "start_blocked", sim_time=now, job_id=qj.job_id,
                            policy=self.name, blocker_kind=kind, blocker_id=bid,
                        )
        return started

    def _emit_binding(self, prov, now, head, head_start, origin) -> None:
        """Change-only ``reservation_binding`` for the protected head."""
        kind, bid = origin.get(head_start, ("unknown", None))
        if self._last_binding.get(head.job_id) == (kind, bid):
            return
        self._last_binding[head.job_id] = (kind, bid)
        if bid is None:
            prov.emit(
                "reservation_binding", sim_time=now, job_id=head.job_id,
                policy=self.name, start_s=head_start, blocker_kind=kind,
            )
        else:
            prov.emit(
                "reservation_binding", sim_time=now, job_id=head.job_id,
                policy=self.name, start_s=head_start, blocker_kind=kind,
                blocker_id=bid,
            )
