"""Policy interface.

A policy is consulted once per scheduling pass (any submission or
completion triggers a pass) and returns the queued jobs to start *now*,
in start order.  It must account for node capacity itself while selecting
— the simulator starts exactly what the policy returns and will raise if
the selections overcommit the pool.

Run-time estimates are obtained through the :class:`SchedulerView` the
simulator passes in; the view consults whatever run-time estimator the
simulation was configured with, so the same policy code runs with actual
run times, user maxima, or any historical predictor (paper §4).
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.scheduler.simulator import QueuedJob, SchedulerView

__all__ = ["Policy", "ReleaseAttributor"]


class Policy(ABC):
    """A queue-ordering / backfilling discipline."""

    #: Short name used in result tables ("FCFS", "LWF", "Backfill").
    name: str = "policy"

    @abstractmethod
    def select(self, view: "SchedulerView") -> "Sequence[QueuedJob]":
        """Return the queued jobs to start now, in start order."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ReleaseAttributor:
    """Names the release that first clears a blocked job's node deficit.

    The binding constraint the myopic policies (FCFS, LWF) report on
    ``start_blocked`` provenance events: releases are the running jobs'
    estimated finishes plus the active reservations' known ends —
    extended via :meth:`add` with jobs the current pass already started
    — accumulated in time order until the deficit clears; the last
    release consumed is the binding one.  Mirrors the policies' own
    myopic view: pending advance reservations (which *consume* future
    capacity) are ignored, exactly as the policies themselves do.

    Estimate calls made here (``view.remaining``) are value-deterministic
    within an estimator epoch and never alter schedules, so the traced
    walks that use this stay selection-identical to the plain walks.
    """

    __slots__ = ("_releases",)

    def __init__(self, view) -> None:
        now = view.now
        releases: list[tuple[float, int, int, str, int]] = []
        for rj in view.running:
            releases.append(
                (now + view.remaining(rj), 0, rj.job.nodes,
                 "running_job", rj.job_id)
            )
        for ares in getattr(view, "active_reservations", ()):
            end = ares.end_time
            releases.append((
                end if end > now else now, 1, ares.nodes,
                "active_reservation", ares.reservation.res_id,
            ))
        releases.sort()
        self._releases = releases

    def add(self, time: float, nodes: int, kind: str, blocker_id: int) -> None:
        """Record an extra release (a job this pass just started)."""
        bisect.insort(self._releases, (time, 2, nodes, kind, blocker_id))

    def binding(self, nodes_needed: int, free_now: int) -> tuple[str, int | None]:
        free = free_now
        for _, _, nodes, kind, bid in self._releases:
            free += nodes
            if free >= nodes_needed:
                return kind, bid
        return "unknown", None
