"""Policy interface.

A policy is consulted once per scheduling pass (any submission or
completion triggers a pass) and returns the queued jobs to start *now*,
in start order.  It must account for node capacity itself while selecting
— the simulator starts exactly what the policy returns and will raise if
the selections overcommit the pool.

Run-time estimates are obtained through the :class:`SchedulerView` the
simulator passes in; the view consults whatever run-time estimator the
simulation was configured with, so the same policy code runs with actual
run times, user maxima, or any historical predictor (paper §4).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.scheduler.simulator import QueuedJob, SchedulerView

__all__ = ["Policy"]


class Policy(ABC):
    """A queue-ordering / backfilling discipline."""

    #: Short name used in result tables ("FCFS", "LWF", "Backfill").
    name: str = "policy"

    @abstractmethod
    def select(self, view: "SchedulerView") -> "Sequence[QueuedJob]":
        """Return the queued jobs to start now, in start order."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
