"""Node pool accounting for a space-shared machine.

The machines in the paper (SP2s, a Paragon) are space-shared: a job gets a
dedicated set of nodes for its whole run.  Only the *count* of free nodes
matters to the scheduling algorithms studied, so the pool tracks counts,
not identities.
"""

from __future__ import annotations

__all__ = ["NodePool"]


class NodePool:
    """A counted pool of identical nodes."""

    def __init__(self, total: int) -> None:
        if total < 1:
            raise ValueError(f"total nodes must be >= 1, got {total}")
        self._total = total
        self._free = total

    @property
    def total(self) -> int:
        return self._total

    @property
    def free(self) -> int:
        return self._free

    @property
    def busy(self) -> int:
        return self._total - self._free

    def fits(self, nodes: int) -> bool:
        """True if ``nodes`` nodes are currently free."""
        return 0 < nodes <= self._free

    def allocate(self, nodes: int) -> None:
        if nodes < 1:
            raise ValueError(f"cannot allocate {nodes} nodes")
        if nodes > self._free:
            raise RuntimeError(
                f"allocation of {nodes} nodes exceeds {self._free} free"
            )
        self._free -= nodes

    def release(self, nodes: int) -> None:
        if nodes < 1:
            raise ValueError(f"cannot release {nodes} nodes")
        if self._free + nodes > self._total:
            raise RuntimeError(
                f"release of {nodes} nodes exceeds capacity "
                f"({self._free} free of {self._total})"
            )
        self._free += nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NodePool(free={self._free}/{self._total})"
