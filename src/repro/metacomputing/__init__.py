"""Metacomputing substrate: multiple machines, one broker.

The paper's introduction motivates wait-time prediction with
metacomputing resource selection: "Estimates of queue wait times are
useful to guide resource selection when several systems are available
[7], to co-allocate resources from multiple systems [2], ...".  This
package provides the multi-machine simulation that motivation implies:

- :class:`Machine` — a named scheduler instance (policy, estimator,
  node count) advancing on a shared clock;
- routing strategies (:mod:`repro.metacomputing.routing`) — random,
  round-robin, least queued work, and the paper-motivated
  **predicted-wait** strategy that probes every machine with a forward
  simulation;
- :class:`MetaSimulator` — drives a global arrival stream through a
  broker into the machines, time-synchronized, and aggregates the
  resulting waits per strategy.
"""

from repro.metacomputing.machine import Machine
from repro.metacomputing.routing import (
    LeastQueuedWorkRouting,
    PredictedWaitRouting,
    RandomRouting,
    RoundRobinRouting,
    RoutingStrategy,
)
from repro.metacomputing.broker import MetaSimulator, MetaResult

__all__ = [
    "Machine",
    "RoutingStrategy",
    "RandomRouting",
    "RoundRobinRouting",
    "LeastQueuedWorkRouting",
    "PredictedWaitRouting",
    "MetaSimulator",
    "MetaResult",
]
