"""One machine of a metacomputing federation."""

from __future__ import annotations

from repro.predictors.base import PointEstimator
from repro.scheduler.policies.base import Policy
from repro.scheduler.simulator import Simulator
from repro.workloads.job import Job

__all__ = ["Machine"]


class Machine:
    """A named scheduler instance advancing on an external clock.

    Wraps a :class:`~repro.scheduler.simulator.Simulator`; the broker
    calls :meth:`advance_to` before consulting or submitting, so all
    machines share one timeline.
    """

    def __init__(
        self,
        name: str,
        policy: Policy,
        estimator: PointEstimator,
        total_nodes: int,
    ) -> None:
        self.name = name
        self.policy = policy
        self.estimator = estimator
        self.sim = Simulator(policy, estimator, total_nodes)

    @property
    def total_nodes(self) -> int:
        return self.sim.pool.total

    def fits(self, job: Job) -> bool:
        """Whether this machine could ever run the job."""
        return job.nodes <= self.total_nodes

    def advance_to(self, time: float) -> None:
        """Process all events up to ``time``; state becomes live-at-time."""
        self.sim.run(until_time=time)
        self.sim.now = max(self.sim.now, time)

    def submit(self, job: Job, time: float) -> None:
        """Inject a job arriving now (the broker's routing decision)."""
        if not self.fits(job):
            raise ValueError(
                f"job {job.job_id} needs {job.nodes} nodes; machine "
                f"{self.name} has {self.total_nodes}"
            )
        from repro.scheduler.events import SUBMIT

        self.sim._events.push(max(time, self.sim.now), SUBMIT, job)

    def drain(self) -> None:
        """Run the machine to completion."""
        self.sim.run()

    def queued_work(self, time: float) -> float:
        """Estimated node-seconds waiting in the queue (broker metric)."""
        total = 0.0
        for qj in self.sim.queued:
            total += qj.job.nodes * self.estimator.predict(qj.job, 0.0, time)
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Machine({self.name!r}, nodes={self.total_nodes})"
