"""The metacomputing broker: one arrival stream, many machines.

:class:`MetaSimulator` advances all machines in lockstep along the
arrival stream's timeline: before each job arrives, every machine
processes its own events up to that instant; the routing strategy then
inspects the live states and places the job.  After the last arrival
every machine drains, and the per-job waits are aggregated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.metacomputing.machine import Machine
from repro.metacomputing.routing import RoutingStrategy
from repro.scheduler.metrics import ScheduleResult
from repro.utils.timeutils import seconds_to_minutes
from repro.workloads.job import Job, Trace

__all__ = ["MetaSimulator", "MetaResult"]


@dataclass(frozen=True)
class MetaResult:
    """Outcome of one brokered run."""

    strategy: str
    per_machine: dict[str, ScheduleResult]
    placements: dict[int, str]  # job_id -> machine name

    @property
    def n_jobs(self) -> int:
        return sum(len(r) for r in self.per_machine.values())

    @property
    def mean_wait_minutes(self) -> float:
        waits = np.concatenate(
            [r.wait_times for r in self.per_machine.values() if len(r)]
        ) if self.n_jobs else np.array([])
        if waits.size == 0:
            return 0.0
        return seconds_to_minutes(float(waits.mean()))

    def machine_share(self, name: str) -> float:
        """Fraction of jobs routed to ``name``."""
        if not self.placements:
            return 0.0
        hits = sum(1 for m in self.placements.values() if m == name)
        return hits / len(self.placements)


class MetaSimulator:
    """Route one arrival stream across machines and simulate them all."""

    def __init__(self, machines: Sequence[Machine], strategy: RoutingStrategy) -> None:
        if not machines:
            raise ValueError("at least one machine required")
        names = [m.name for m in machines]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate machine names: {names}")
        self.machines = list(machines)
        self.strategy = strategy

    def run(self, arrivals: Trace | Iterable[Job]) -> MetaResult:
        """Broker every job of ``arrivals`` (in submission order)."""
        placements: dict[int, str] = {}
        jobs = list(arrivals)
        jobs.sort(key=lambda j: (j.submit_time, j.job_id))
        for job in jobs:
            t = job.submit_time
            eligible = [m for m in self.machines if m.fits(job)]
            if not eligible:
                raise ValueError(
                    f"job {job.job_id} ({job.nodes} nodes) fits no machine"
                )
            for m in eligible:
                m.advance_to(t)
            target = self.strategy.choose(eligible, job, t)
            if target not in eligible:
                raise RuntimeError(
                    f"{self.strategy.name} chose an ineligible machine"
                )
            target.submit(job, t)
            placements[job.job_id] = target.name
        per_machine: dict[str, ScheduleResult] = {}
        for m in self.machines:
            m.drain()
            per_machine[m.name] = m.sim.result()
        return MetaResult(
            strategy=self.strategy.name,
            per_machine=per_machine,
            placements=placements,
        )
