"""Broker routing strategies.

Each strategy picks one of the eligible machines for an arriving job.
``PredictedWaitRouting`` is the paper-motivated one: probe every
machine's live state with a forward simulation of the candidate job and
submit where the predicted wait is smallest.  The others are the
baselines a resource-selection study needs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.metacomputing.machine import Machine
from repro.scheduler.simulator import QueuedJob, SystemSnapshot
from repro.utils.rng import rng_from_seed
from repro.waitpred.predictor import predict_wait
from repro.workloads.job import Job

__all__ = [
    "RoutingStrategy",
    "RandomRouting",
    "RoundRobinRouting",
    "LeastQueuedWorkRouting",
    "PredictedWaitRouting",
]


class RoutingStrategy(ABC):
    """Chooses a machine for each arriving job."""

    name: str = "routing"

    @abstractmethod
    def choose(self, machines: Sequence[Machine], job: Job, time: float) -> Machine:
        """Return one of ``machines`` (all guaranteed to fit ``job``)."""


class RandomRouting(RoutingStrategy):
    """Uniform random choice among eligible machines."""

    name = "random"

    def __init__(self, seed: int | np.random.Generator = 0) -> None:
        self._rng = rng_from_seed(seed)

    def choose(self, machines: Sequence[Machine], job: Job, time: float) -> Machine:
        return machines[int(self._rng.integers(0, len(machines)))]


class RoundRobinRouting(RoutingStrategy):
    """Cycle through machines regardless of state."""

    name = "round-robin"

    def __init__(self) -> None:
        self._counter = 0

    def choose(self, machines: Sequence[Machine], job: Job, time: float) -> Machine:
        machine = machines[self._counter % len(machines)]
        self._counter += 1
        return machine


class LeastQueuedWorkRouting(RoutingStrategy):
    """Pick the machine with the least estimated queued work per node.

    The classic cheap heuristic: no forward simulation, just queue mass
    normalized by machine size.
    """

    name = "least-work"

    def choose(self, machines: Sequence[Machine], job: Job, time: float) -> Machine:
        return min(
            machines,
            key=lambda m: (m.queued_work(time) / m.total_nodes, m.name),
        )


class PredictedWaitRouting(RoutingStrategy):
    """Forward-simulate the job on every machine; pick the shortest wait.

    The paper's motivating application of queue wait-time prediction
    (§1).  Ties break toward the larger machine, then by name, for
    determinism.
    """

    name = "predicted-wait"

    def choose(self, machines: Sequence[Machine], job: Job, time: float) -> Machine:
        scored: list[tuple[float, int, str, Machine]] = []
        for m in machines:
            snapshot = m.sim.snapshot()
            probed = SystemSnapshot(
                now=time,
                running=snapshot.running,
                queued=snapshot.queued + (QueuedJob(job),),
                total_nodes=snapshot.total_nodes,
            )
            wait = predict_wait(probed, m.policy, m.estimator, job.job_id)
            scored.append((wait, -m.total_nodes, m.name, m))
        scored.sort(key=lambda s: s[:3])
        return scored[0][3]
