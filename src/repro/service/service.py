"""Online wait-time prediction service.

:class:`PredictionService` is the long-lived, query-at-any-time form of
the paper's §3 technique.  Where :class:`repro.waitpred.WaitTimePredictor`
predicts each job's wait exactly once — at submission, inside a replay —
the service ingests a *stream* of scheduler events (submit / start /
finish) and answers "how long until job J starts?" whenever asked,
for any queued job, any number of times.

Two properties make repeated queries cheap:

- **Incremental snapshots.**  The service mirrors the scheduler state
  (running and queued jobs) in insertion-ordered dicts updated O(1) per
  event, and materializes the :class:`~repro.scheduler.simulator.SystemSnapshot`
  tuple lazily, at most once per epoch.  A property suite
  (``tests/test_service.py``) checks the incrementally-maintained
  snapshot equals a from-scratch :meth:`Simulator.snapshot` after any
  event interleaving.
- **Epoch-keyed caching.**  Every event bumps ``epoch``.  Frozen
  durations and predicted starts are cached under
  ``(epoch, estimator.history_epoch)`` — the same contract
  :mod:`repro.predictors.base` defines for scheduling-side caches — so
  queries between events are O(1) dict hits, bit-identical to an
  uncached computation because the cache stores the computed float
  itself.  Estimators advertising ``history_epoch is None`` (volatile)
  disable caching rather than risk staleness.

Cache misses are answered in one queue walk where an analytic shortcut
is exact (:func:`repro.waitpred.fast.fcfs_predicted_starts`,
:func:`~repro.waitpred.fast.backfill_predicted_starts`), computing the
*whole* queue's starts at once so the rest of the epoch's queries —
single or batch — are hits.  Policies without a shortcut (LWF, EASY, or
backfill with a divergent scheduler estimator) fall back to per-job
:func:`~repro.scheduler.simulator.forward_simulate`, counted in
``service.fallback_simulations``.
"""

from __future__ import annotations

import math
import time

from repro.obs import QUERY_LATENCY_BUCKETS, Instrumentation
from repro.scheduler.policies import BackfillPolicy, FCFSPolicy
from repro.scheduler.policies.base import Policy
from repro.scheduler.simulator import (
    QueuedJob,
    RunningJob,
    RuntimeEstimator,
    SystemSnapshot,
    forward_simulate,
)
from repro.waitpred.fast import (
    UnknownJobError,
    backfill_predicted_starts,
    fcfs_predicted_starts,
    predict_start_fast,
)
from repro.workloads.job import Job

__all__ = ["PredictionService", "SimulatorFeed", "UnknownJobError"]


class PredictionService:
    """Event-fed wait-time oracle over a mirrored scheduler state.

    ``estimator`` supplies the believed durations (the evaluated
    predictor, wrapped in a :class:`repro.predictors.base.PointEstimator`
    or anything matching the estimator protocol);
    ``scheduler_estimator`` optionally supplies the estimates the *real*
    scheduler decides by, when they differ (the paper's user-maxima
    setup).  Left ``None``, the imagined world is self-consistent and
    the backfill shortcut stays exact.

    Thread-safety: none.  The TCP server (:mod:`repro.service.server`)
    serializes access with a lock; in-process users are expected to call
    from one thread.
    """

    def __init__(
        self,
        policy: Policy,
        estimator: RuntimeEstimator,
        total_nodes: int,
        *,
        scheduler_estimator: RuntimeEstimator | None = None,
        fast: bool = True,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.policy = policy
        self.estimator = estimator
        self.scheduler_estimator = scheduler_estimator
        self.total_nodes = total_nodes
        self.fast = fast
        self.now = 0.0
        #: Monotone event counter; the cache key's first component.
        self.epoch = 0
        self._queued: dict[int, QueuedJob] = {}  # insertion = arrival order
        self._running: dict[int, RunningJob] = {}  # insertion = start order
        self._finished: set[int] = set()
        # Lazily materialized snapshot, valid for _snapshot_epoch only.
        self._snapshot: SystemSnapshot | None = None
        self._snapshot_epoch = -1
        # Frozen durations/estimates and predicted starts, valid while
        # _cache_key == (epoch, estimator.history_epoch).  The starts
        # dict fills whole-queue on a shortcut miss, per-job on fallback.
        self._cache_key: object = None
        self._durations: dict[int, float] | None = None
        self._estimates: dict[int, float] | None = None
        self._starts: dict[int, float] = {}
        obs = instrumentation if instrumentation is not None else Instrumentation()
        self.obs = obs
        self._n_events = 0
        self._n_queries = 0
        self._n_hits = 0
        self._n_misses = 0
        self._n_fallback = 0
        self._h_latency = obs.registry.histogram(
            "service.query_latency_seconds", QUERY_LATENCY_BUCKETS
        )

    # ------------------------------------------------------------------
    # event ingestion
    # ------------------------------------------------------------------
    def _advance(self, now: float) -> None:
        if now < self.now:
            raise ValueError(
                f"event time {now} precedes service clock {self.now}"
            )
        self.now = now
        self.epoch += 1
        self._n_events += 1

    def _notify_estimator(self, hook: str, job: Job) -> None:
        targets = [self.estimator]
        if (
            self.scheduler_estimator is not None
            and self.scheduler_estimator is not self.estimator
        ):
            targets.append(self.scheduler_estimator)
        for est in targets:
            fn = getattr(est, hook, None)
            if fn is not None:
                fn(job, self.now)

    def tick(self, now: float) -> None:
        """Advance the clock with no job event (wall time passing).

        Predictions are anchored at the snapshot instant, so time
        passing changes them (a reserved start draws nearer) — hence a
        tick bumps the epoch like any other event.
        """
        self._advance(now)

    def submit(self, job: Job, now: float) -> None:
        """A job entered the queue at ``now``."""
        jid = job.job_id
        if jid in self._queued or jid in self._running or jid in self._finished:
            raise ValueError(f"job {jid} already submitted")
        self._advance(now)
        self._queued[jid] = QueuedJob(job)
        self._notify_estimator("on_submit", job)

    def start(self, job_id: int, now: float) -> None:
        """A queued job began running at ``now``."""
        qj = self._queued.get(job_id)
        if qj is None:
            raise UnknownJobError(job_id, "is not queued, so cannot start")
        self._advance(now)
        del self._queued[job_id]
        self._running[job_id] = RunningJob(job=qj.job, start_time=now)
        self._notify_estimator("on_start", qj.job)

    def finish(self, job_id: int, now: float) -> None:
        """A running job released its nodes at ``now``."""
        rj = self._running.get(job_id)
        if rj is None:
            raise UnknownJobError(job_id, "is not running, so cannot finish")
        self._advance(now)
        del self._running[job_id]
        self._finished.add(job_id)
        self._notify_estimator("on_finish", rj.job)

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    def snapshot(self) -> SystemSnapshot:
        """The mirrored state as a snapshot, materialized once per epoch."""
        if self._snapshot is None or self._snapshot_epoch != self.epoch:
            self._snapshot = SystemSnapshot(
                now=self.now,
                running=tuple(self._running.values()),
                queued=tuple(self._queued.values()),
                total_nodes=self.total_nodes,
            )
            self._snapshot_epoch = self.epoch
        return self._snapshot

    @property
    def queued_ids(self) -> tuple[int, ...]:
        """Queued job ids in arrival order."""
        return tuple(self._queued)

    @property
    def running_ids(self) -> tuple[int, ...]:
        """Running job ids in start order."""
        return tuple(self._running)

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def _freeze(self, estimator: RuntimeEstimator) -> dict[int, float]:
        # Must mirror repro.waitpred.predictor._freeze exactly: cached
        # answers are only bit-identical to predict_wait if the frozen
        # inputs are.
        now = self.now
        out: dict[int, float] = {}
        for rj in self._running.values():
            out[rj.job_id] = estimator.predict(rj.job, rj.elapsed(now), now)
        for qj in self._queued.values():
            out[qj.job_id] = estimator.predict(qj.job, 0.0, now)
        return out

    def _sync_cache(self) -> bool:
        """Freeze durations for this epoch; return whether caching is on.

        Returns ``False`` for volatile estimators (``history_epoch`` is
        ``None``): the frozen inputs are still reused within this call,
        but nothing survives to the next query.
        """
        hist = getattr(self.estimator, "history_epoch", None)
        cacheable = hist is not None
        key = (self.epoch, hist) if cacheable else None
        if not cacheable or key != self._cache_key:
            self._cache_key = key
            self._durations = self._freeze(self.estimator)
            self._estimates = (
                self._freeze(self.scheduler_estimator)
                if self.scheduler_estimator is not None
                else None
            )
            self._starts = {}
        return cacheable

    def _shortcut_starts(self) -> dict[int, float] | None:
        """All queued starts in one walk, or ``None`` when inexact."""
        snap = self.snapshot()
        durations = self._durations
        assert durations is not None
        if isinstance(self.policy, FCFSPolicy):
            return fcfs_predicted_starts(snap, durations)
        estimates = self._estimates
        self_consistent = estimates is None or all(
            math.isclose(estimates.get(jid, float("nan")), d, rel_tol=1e-12)
            for jid, d in durations.items()
        )
        if isinstance(self.policy, BackfillPolicy) and self_consistent:
            return backfill_predicted_starts(snap, durations)
        return None

    def _start_of(self, job_id: int) -> float:
        start = self._starts.get(job_id)
        if start is not None:
            self._n_hits += 1
            return start
        self._n_misses += 1
        if self.fast:
            batch = self._shortcut_starts()
            if batch is not None:
                self._starts.update(batch)
                return self._starts[job_id]
        # No exact shortcut: reference simulation, one job at a time.
        self._n_fallback += 1
        snap = self.snapshot()
        assert self._durations is not None
        if self.fast:
            start = predict_start_fast(
                snap, self.policy, self._durations, job_id,
                estimates=self._estimates,
            )
        else:
            start = forward_simulate(
                snap, self.policy, self._durations, job_id,
                estimates=self._estimates,
            )
        self._starts[job_id] = start
        return start

    def predict(self, job_id: int) -> float:
        """Predicted remaining wait (seconds) of ``job_id``, now.

        Running and finished jobs answer 0.0 — their wait is over.
        Never-submitted ids raise :class:`UnknownJobError`.
        """
        t0 = time.perf_counter()
        self._n_queries += 1
        try:
            if job_id in self._running or job_id in self._finished:
                self._n_hits += 1  # O(1), no walk: counts as a hit
                return 0.0
            if job_id not in self._queued:
                raise UnknownJobError(job_id, "was never submitted")
            self._sync_cache()
            return self._start_of(job_id) - self.now
        finally:
            self._h_latency.observe(time.perf_counter() - t0)

    def predict_batch(
        self, job_ids: list[int] | None = None
    ) -> dict[int, float]:
        """Predicted waits for ``job_ids`` (default: every queued job).

        Durations are frozen once for the whole batch — within one
        epoch, the batch answer for a job is bit-identical to a single
        :meth:`predict` for it.
        """
        t0 = time.perf_counter()
        try:
            ids = list(self._queued) if job_ids is None else list(job_ids)
            self._n_queries += len(ids)
            out: dict[int, float] = {}
            synced = False
            for jid in ids:
                if jid in self._running or jid in self._finished:
                    self._n_hits += 1
                    out[jid] = 0.0
                    continue
                if jid not in self._queued:
                    raise UnknownJobError(jid, "was never submitted")
                if not synced:
                    self._sync_cache()
                    synced = True
                out[jid] = self._start_of(jid) - self.now
            return out
        finally:
            self._h_latency.observe(time.perf_counter() - t0)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Fold service tallies into the registry and snapshot it."""
        reg = self.obs.registry
        reg.counter("service.events").value = self._n_events
        reg.counter("service.queries").value = self._n_queries
        reg.counter("service.cache_hits").value = self._n_hits
        reg.counter("service.cache_misses").value = self._n_misses
        reg.counter("service.fallback_simulations").value = self._n_fallback
        reg.gauge("service.queued_jobs").value = len(self._queued)
        reg.gauge("service.running_jobs").value = len(self._running)
        reg.gauge("service.epoch").value = self.epoch
        return reg.snapshot()


class SimulatorFeed:
    """Simulator observer mirroring every life-cycle event into a service.

    Attach with :meth:`Simulator.add_observer`; the service then tracks
    the live simulator state exactly (the property suite asserts
    ``feed.service.snapshot() == sim.snapshot()`` after any replay
    prefix).  Used by the replay client (``repro-sched query --replay``)
    and the parity tests.
    """

    def __init__(self, service: PredictionService) -> None:
        self.service = service

    def on_submit(self, view, qj: QueuedJob) -> None:
        self.service.submit(qj.job, view.now)

    def on_start(self, view, job: Job) -> None:
        self.service.start(job.job_id, view.now)

    def on_finish(self, view, job: Job) -> None:
        self.service.finish(job.job_id, view.now)
