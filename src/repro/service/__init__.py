"""Online wait-time prediction service (see ``docs/architecture.md``).

:class:`PredictionService` mirrors scheduler state from a stream of
submit/start/finish events and answers wait queries through the
epoch-keyed caches and analytic shortcuts of :mod:`repro.waitpred`;
:mod:`repro.service.server` puts a JSON-lines TCP protocol in front of
it.  ``repro-sched serve`` / ``repro-sched query`` are the CLI entry
points.
"""

from repro.service.server import (
    ClientFeed,
    PredictionServer,
    ServiceClient,
    job_from_wire,
    job_to_wire,
)
from repro.service.service import PredictionService, SimulatorFeed, UnknownJobError

__all__ = [
    "PredictionService",
    "SimulatorFeed",
    "UnknownJobError",
    "PredictionServer",
    "ServiceClient",
    "ClientFeed",
    "job_to_wire",
    "job_from_wire",
]
