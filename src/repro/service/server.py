"""JSON-lines TCP front end for :class:`~repro.service.PredictionService`.

One request per line, one response per line, UTF-8 JSON both ways — the
simplest protocol a shell script, a scheduler hook, or ``nc`` can speak,
with no dependencies beyond the stdlib.  Requests are objects with an
``op`` field; responses echo ``{"ok": true, ...}`` or
``{"ok": false, "error": kind, "message": ...}``.

Operations
----------
``ping``                     liveness check.
``submit|start|finish``      one scheduler event (``job`` object or
                             ``job_id``, plus ``now``).
``tick``                     advance the clock with no job event.
``events``                   a batch of events, applied in order.
``predict``                  single wait query (``job_id``).
``predict_batch``            many waits (``job_ids`` or all queued).
``state``                    clock, epoch, queued/running ids.
``stats``                    metrics snapshot (counters, latency
                             histogram).
``shutdown``                 stop the server loop.

A ``threading.Lock`` serializes all service access, so the threaded
server stays correct without the service itself being thread-safe.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Any

from repro.service.service import PredictionService, UnknownJobError
from repro.workloads.job import Job

__all__ = ["PredictionServer", "ServiceClient", "job_from_wire", "job_to_wire"]

#: Job fields carried on the wire (the prediction-relevant subset).
_JOB_FIELDS = ("job_id", "submit_time", "run_time", "nodes")
_JOB_OPTIONAL = ("user", "job_type", "queue", "job_class", "max_run_time")


def job_to_wire(job: Job) -> dict[str, Any]:
    """The JSON-safe dict form of ``job`` (prediction-relevant fields)."""
    out: dict[str, Any] = {f: getattr(job, f) for f in _JOB_FIELDS}
    for f in _JOB_OPTIONAL:
        value = getattr(job, f)
        if value is not None:
            out[f] = value
    return out


def job_from_wire(payload: dict[str, Any]) -> Job:
    """Rebuild a :class:`Job` from its wire form."""
    missing = [f for f in _JOB_FIELDS if f not in payload]
    if missing:
        raise ValueError(f"job payload missing fields: {', '.join(missing)}")
    kwargs = {f: payload[f] for f in _JOB_FIELDS}
    for f in _JOB_OPTIONAL:
        if f in payload:
            kwargs[f] = payload[f]
    return Job(**kwargs)


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        server: PredictionServer = self.server  # type: ignore[assignment]
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                response = server.dispatch(request)
            except Exception as exc:  # malformed JSON, bad fields, ...
                response = {
                    "ok": False,
                    "error": type(exc).__name__,
                    "message": str(exc),
                }
            self.wfile.write(json.dumps(response).encode() + b"\n")
            self.wfile.flush()
            if response.get("bye"):
                # Shut down from a fresh thread: shutdown() blocks until
                # serve_forever exits, which waits on this very handler.
                threading.Thread(target=server.shutdown, daemon=True).start()
                return


class PredictionServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server wrapping one :class:`PredictionService`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self, address: tuple[str, int], service: PredictionService
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self._lock = threading.Lock()

    @property
    def port(self) -> int:
        """The bound port (useful with the ``0`` ask-the-OS address)."""
        return self.server_address[1]

    # -- request dispatch ------------------------------------------------
    def dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        """Apply one request to the service; never raises."""
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            return {
                "ok": False,
                "error": "UnknownOperation",
                "message": f"unknown op {op!r}",
            }
        try:
            with self._lock:
                return {"ok": True, **handler(request)}
        except UnknownJobError as exc:
            return {
                "ok": False,
                "error": "UnknownJobError",
                "job_id": exc.job_id,
                "message": str(exc),
            }
        except (KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": type(exc).__name__, "message": str(exc)}

    # -- operations ------------------------------------------------------
    def _op_ping(self, request: dict) -> dict:
        return {"pong": True}

    def _apply_event(self, event: dict) -> None:
        kind = event["event"]
        now = float(event["now"])
        if kind == "tick":
            self.service.tick(now)
        elif kind == "submit":
            self.service.submit(job_from_wire(event["job"]), now)
        elif kind == "start":
            self.service.start(int(event["job_id"]), now)
        elif kind == "finish":
            self.service.finish(int(event["job_id"]), now)
        else:
            raise ValueError(f"unknown event kind {kind!r}")

    def _op_tick(self, request: dict) -> dict:
        self.service.tick(float(request["now"]))
        return {"epoch": self.service.epoch}

    def _op_submit(self, request: dict) -> dict:
        self.service.submit(job_from_wire(request["job"]), float(request["now"]))
        return {"epoch": self.service.epoch}

    def _op_start(self, request: dict) -> dict:
        self.service.start(int(request["job_id"]), float(request["now"]))
        return {"epoch": self.service.epoch}

    def _op_finish(self, request: dict) -> dict:
        self.service.finish(int(request["job_id"]), float(request["now"]))
        return {"epoch": self.service.epoch}

    def _op_events(self, request: dict) -> dict:
        events = request["events"]
        for event in events:
            self._apply_event(event)
        return {"applied": len(events), "epoch": self.service.epoch}

    def _op_predict(self, request: dict) -> dict:
        job_id = int(request["job_id"])
        wait = self.service.predict(job_id)
        return {"job_id": job_id, "wait": wait, "epoch": self.service.epoch}

    def _op_predict_batch(self, request: dict) -> dict:
        ids = request.get("job_ids")
        waits = self.service.predict_batch(
            None if ids is None else [int(j) for j in ids]
        )
        return {
            "waits": {str(jid): wait for jid, wait in waits.items()},
            "epoch": self.service.epoch,
        }

    def _op_state(self, request: dict) -> dict:
        svc = self.service
        return {
            "now": svc.now,
            "epoch": svc.epoch,
            "total_nodes": svc.total_nodes,
            "queued": list(svc.queued_ids),
            "running": list(svc.running_ids),
        }

    def _op_stats(self, request: dict) -> dict:
        return {"metrics": self.service.stats()}

    def _op_shutdown(self, request: dict) -> dict:
        return {"bye": True}


class ServiceClient:
    """Blocking JSON-lines client for :class:`PredictionServer`.

    Raises :class:`UnknownJobError` when the server reports one, and
    :class:`RuntimeError` for any other error response, so callers see
    the same exception surface as in-process :class:`PredictionService`
    use.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 10.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")

    def close(self) -> None:
        self._rfile.close()
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def call(self, request: dict[str, Any]) -> dict[str, Any]:
        """One request/response round trip; raises on error responses."""
        self._sock.sendall(json.dumps(request).encode() + b"\n")
        raw = self._rfile.readline()
        if not raw:
            raise ConnectionError("server closed the connection")
        response = json.loads(raw)
        if not response.get("ok"):
            if response.get("error") == "UnknownJobError":
                raise UnknownJobError(
                    int(response.get("job_id", -1)),
                    response.get("message", "unknown job"),
                )
            raise RuntimeError(
                f"{response.get('error', 'Error')}: {response.get('message', '')}"
            )
        return response

    # -- convenience wrappers -------------------------------------------
    def ping(self) -> bool:
        return bool(self.call({"op": "ping"}).get("pong"))

    def tick(self, now: float) -> None:
        self.call({"op": "tick", "now": now})

    def submit(self, job: Job, now: float) -> None:
        self.call({"op": "submit", "job": job_to_wire(job), "now": now})

    def start(self, job_id: int, now: float) -> None:
        self.call({"op": "start", "job_id": job_id, "now": now})

    def finish(self, job_id: int, now: float) -> None:
        self.call({"op": "finish", "job_id": job_id, "now": now})

    def send_events(self, events: list[dict[str, Any]]) -> int:
        return int(self.call({"op": "events", "events": events})["applied"])

    def predict(self, job_id: int) -> float:
        return float(self.call({"op": "predict", "job_id": job_id})["wait"])

    def predict_batch(
        self, job_ids: list[int] | None = None
    ) -> dict[int, float]:
        request: dict[str, Any] = {"op": "predict_batch"}
        if job_ids is not None:
            request["job_ids"] = job_ids
        waits = self.call(request)["waits"]
        return {int(jid): float(wait) for jid, wait in waits.items()}

    def state(self) -> dict[str, Any]:
        return self.call({"op": "state"})

    def stats(self) -> dict[str, Any]:
        return self.call({"op": "stats"})["metrics"]

    def shutdown(self) -> None:
        self.call({"op": "shutdown"})


class ClientFeed:
    """Simulator observer streaming life-cycle events to a remote server.

    The network twin of :class:`~repro.service.service.SimulatorFeed`:
    attach to a local replay and the server's mirrored state follows the
    simulation event by event (used by ``repro-sched query --replay``).
    """

    def __init__(self, client: ServiceClient) -> None:
        self.client = client

    def on_submit(self, view, qj) -> None:
        self.client.submit(qj.job, view.now)

    def on_start(self, view, job) -> None:
        self.client.start(job.job_id, view.now)

    def on_finish(self, view, job) -> None:
        self.client.finish(job.job_id, view.now)
