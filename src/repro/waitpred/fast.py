"""Analytic (profile-based) wait-time prediction shortcuts.

The reference implementation of the paper's §3 technique is an
event-driven forward simulation (:func:`repro.scheduler.simulator.forward_simulate`).
For two important cases the predicted start time admits a direct
profile computation that avoids the event machinery entirely:

- **FCFS, always.**  FCFS ignores estimates, jobs start in arrival
  order, and after a job's (monotone) start the availability profile is
  non-decreasing, so planning each queued job at its earliest feasible
  instant — floored at the previous job's start — replays the event
  semantics exactly.
- **Backfill, when the believed durations equal the scheduler's
  estimates.**  Conservative backfill's reservation plan is a fixed
  point under replanning when every job finishes exactly as estimated:
  the plan computed once at the snapshot instant is the schedule.

Greedy LWF has no such shortcut (a lower-priority job that starts in a
gap may genuinely delay a higher-priority one, which replanning
captures and a one-shot plan does not), and neither does backfill with
``durations != estimates`` (finish events trigger replans that shift
reservations).  :func:`predict_start_fast` dispatches: shortcut when
exact, reference simulation otherwise.

The equivalence of shortcut and reference is property-tested in
``tests/test_waitpred_fast.py``.
"""

from __future__ import annotations

import math

from repro.scheduler.policies import BackfillPolicy, FCFSPolicy
from repro.scheduler.policies.backfill import AvailabilityProfile
from repro.scheduler.policies.base import Policy
from repro.scheduler.simulator import SystemSnapshot, forward_simulate

__all__ = [
    "UnknownJobError",
    "fcfs_predicted_start",
    "fcfs_predicted_starts",
    "backfill_predicted_start",
    "backfill_predicted_starts",
    "predict_start_fast",
]

_EPS = 1e-6


class UnknownJobError(KeyError):
    """A wait query named a job the snapshot's queue does not contain.

    Raised instead of a bare :class:`KeyError` by the prediction query
    path so callers (the prediction service in particular) can tell
    "you asked about a job that already started, finished, or was never
    submitted" apart from a programming error.  Subclasses
    :class:`KeyError`, so pre-existing ``except KeyError`` handling
    keeps working.
    """

    def __init__(self, job_id: int, reason: str = "not in snapshot queue") -> None:
        super().__init__(job_id)
        self.job_id = job_id
        self.reason = reason

    def __str__(self) -> str:
        return f"job {self.job_id} {self.reason}"


def _duration_of(durations: dict[int, float], job_id: int) -> float:
    """``durations[job_id]`` with a typed error naming the missing job."""
    try:
        return durations[job_id]
    except KeyError:
        raise UnknownJobError(
            job_id, "has no entry in the supplied durations"
        ) from None


def _seed_profile(
    snapshot: SystemSnapshot, durations: dict[int, float]
) -> AvailabilityProfile:
    """Profile of free nodes from the snapshot's running jobs."""
    used = sum(rj.job.nodes for rj in snapshot.running)
    releases = [
        (
            snapshot.now
            + max(_duration_of(durations, rj.job_id) - rj.elapsed(snapshot.now), _EPS),
            rj.job.nodes,
        )
        for rj in snapshot.running
    ]
    return AvailabilityProfile.from_releases(
        snapshot.now, snapshot.total_nodes - used, snapshot.total_nodes, releases
    )


def fcfs_predicted_start(
    snapshot: SystemSnapshot, durations: dict[int, float], target_job_id: int
) -> float:
    """Exact FCFS predicted start of ``target_job_id`` (no event loop)."""
    profile = _seed_profile(snapshot, durations)
    prev_start = snapshot.now
    for qj in snapshot.queued:  # arrival order
        duration = max(_duration_of(durations, qj.job_id), _EPS)
        start = profile.reserve(qj.job.nodes, duration, not_before=prev_start)
        prev_start = start
        if qj.job_id == target_job_id:
            return start
    raise UnknownJobError(target_job_id)


def fcfs_predicted_starts(
    snapshot: SystemSnapshot, durations: dict[int, float]
) -> dict[int, float]:
    """Exact FCFS predicted starts of *every* queued job, in one walk.

    The single-target walk already visits every job ahead of the target;
    this variant keeps going to the end of the queue and returns
    ``{job_id: start}`` for all of it — the batch form the prediction
    service uses to answer a whole epoch's queries from one profile
    pass.  Each entry is bit-identical to the single-target
    :func:`fcfs_predicted_start`.
    """
    profile = _seed_profile(snapshot, durations)
    prev_start = snapshot.now
    out: dict[int, float] = {}
    for qj in snapshot.queued:  # arrival order
        duration = max(_duration_of(durations, qj.job_id), _EPS)
        start = profile.reserve(qj.job.nodes, duration, not_before=prev_start)
        prev_start = start
        out[qj.job_id] = start
    return out


def backfill_predicted_start(
    snapshot: SystemSnapshot, durations: dict[int, float], target_job_id: int
) -> float:
    """Predicted start under conservative backfill with trusted estimates.

    Exact only when the scheduler's estimates equal ``durations`` (the
    self-consistent imagined world); callers must ensure that.
    """
    profile = _seed_profile(snapshot, durations)
    for qj in snapshot.queued:  # arrival order
        duration = max(_duration_of(durations, qj.job_id), BackfillPolicy.min_duration)
        start = profile.reserve(qj.job.nodes, duration)
        if qj.job_id == target_job_id:
            return start
    raise UnknownJobError(target_job_id)


def backfill_predicted_starts(
    snapshot: SystemSnapshot, durations: dict[int, float]
) -> dict[int, float]:
    """Backfill predicted starts of every queued job, in one walk.

    Batch form of :func:`backfill_predicted_start` (same exactness
    caveat: the scheduler's estimates must equal ``durations``); each
    entry is bit-identical to the single-target call.
    """
    profile = _seed_profile(snapshot, durations)
    out: dict[int, float] = {}
    for qj in snapshot.queued:  # arrival order
        duration = max(_duration_of(durations, qj.job_id), BackfillPolicy.min_duration)
        out[qj.job_id] = profile.reserve(qj.job.nodes, duration)
    return out


def predict_start_fast(
    snapshot: SystemSnapshot,
    policy: Policy,
    durations: dict[int, float],
    target_job_id: int,
    *,
    estimates: dict[int, float] | None = None,
) -> float:
    """Predicted start time, by shortcut when exact, else by simulation.

    Drop-in equivalent of
    :func:`repro.scheduler.simulator.forward_simulate` with identical
    semantics and results (bit-equal up to float associativity).
    """
    if isinstance(policy, FCFSPolicy):
        # FCFS never consults estimates; the shortcut is always exact.
        return fcfs_predicted_start(snapshot, durations, target_job_id)
    self_consistent = estimates is None or all(
        math.isclose(estimates.get(jid, float("nan")), d, rel_tol=1e-12)
        for jid, d in durations.items()
    )
    if isinstance(policy, BackfillPolicy) and self_consistent:
        return backfill_predicted_start(snapshot, durations, target_job_id)
    return forward_simulate(
        snapshot, policy, durations, target_job_id, estimates=estimates
    )
