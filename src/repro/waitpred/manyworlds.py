"""Vectorized many-worlds Monte-Carlo engine for wait-time uncertainty.

:mod:`repro.waitpred.uncertainty` answers interval queries by sampling S
run-time worlds and forward-planning the scheduler in each.  Its original
hot core was a Python loop — one full profile replay per world — so a
30-sample interval already cost 30 replays and sensitivity sweeps were
out of reach.  This module restructures that core as structure-of-arrays
state advanced across all S worlds at once:

1. :func:`encode_snapshot` walks the snapshot *once*, predicting each
   job a single time (point estimate + interval half-width) and packing
   the per-job node counts, elapsed times, points and sigmas into flat
   numpy arrays (running jobs first, then queued, both in snapshot
   order);
2. :func:`sample_durations` draws every world's run times in a single
   ``(S, n_jobs)`` ``standard_normal`` call;
3. :func:`predict_starts_batch` plans the whole queue through a
   :class:`~repro.scheduler.policies.backfill.BatchAvailabilityProfile`
   — the exact FCFS/backfill shortcuts of :mod:`repro.waitpred.fast`
   with a sample axis, one vectorized ``reserve`` per queued job instead
   of one scalar reserve per (world, job) — falling back to the scalar
   per-world :func:`~repro.waitpred.fast.predict_start_fast` only for
   policies without a shortcut.

Determinism and parity contract
-------------------------------
For a fixed integer seed the engine is bit-identical, world by world, to
the scalar loop it replaced: numpy fills a ``standard_normal((S, k))``
array from the same bit stream as ``S * k`` sequential scalar calls, the
duration arithmetic (``max(point + sigma * z, 1e-6)``) runs the same
float64 operations elementwise, and the batched profile reproduces the
scalar profile's anchors exactly (see ``BatchAvailabilityProfile``).
:func:`scalar_starts` retains the per-world reference loop as the parity
oracle; ``tests/test_properties_uncertainty.py`` asserts ``==`` (not
approx) between the two on random system states, and the same guarantee
makes :func:`repro.waitpred.uncertainty.predict_wait_interval` return
the same intervals it did before the vectorization.  Passing an
``np.random.Generator`` instead of an int uses that generator in place
(no re-wrapping), so callers can thread one stream through many queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.predictors.base import PointEstimator
from repro.scheduler.policies import BackfillPolicy, FCFSPolicy
from repro.scheduler.policies.backfill import BatchAvailabilityProfile
from repro.scheduler.policies.base import Policy
from repro.scheduler.simulator import SystemSnapshot
from repro.utils.rng import rng_from_seed
from repro.waitpred.fast import predict_start_fast

__all__ = [
    "EncodedSnapshot",
    "SweepPoint",
    "encode_snapshot",
    "sample_durations",
    "predict_starts_batch",
    "scalar_starts",
    "sweep_estimates",
]

_EPS = 1e-6

#: z-score matching the predictors' default 90% two-sided interval; the
#: sampled run-time distribution is Normal(estimate, half_width / z).
_Z90 = 1.645


@dataclass(frozen=True)
class EncodedSnapshot:
    """A :class:`SystemSnapshot` packed into structure-of-arrays form.

    Job axis order is running jobs (snapshot order) followed by queued
    jobs (arrival order) — the same iteration order the scalar loop
    used, which is what makes batched draws reproduce its stream.
    """

    now: float
    total_nodes: int
    free_nodes: int
    run_ids: tuple[int, ...]
    run_nodes: np.ndarray  # (R,) int64
    run_elapsed: np.ndarray  # (R,) float64
    queued_ids: tuple[int, ...]
    queued_nodes: np.ndarray  # (Q,) int64
    point: np.ndarray  # (R+Q,) float64 — point estimates, running then queued
    sigma: np.ndarray  # (R+Q,) float64 — Normal sigmas, 0 for no-interval jobs

    @property
    def n_running(self) -> int:
        return len(self.run_ids)

    @property
    def n_jobs(self) -> int:
        return len(self.point)

    def job_ids(self) -> tuple[int, ...]:
        return self.run_ids + self.queued_ids

    def durations_dict(self, durations: np.ndarray, world: int) -> dict[int, float]:
        """One world's column of a duration matrix as a job-id dict."""
        row = durations[world]
        return {jid: float(row[i]) for i, jid in enumerate(self.job_ids())}


def _predict_once(
    estimator: PointEstimator, job, elapsed: float, now: float
) -> tuple[float, float]:
    """``(point, sigma)`` from a single predictor call.

    The rich prediction supplies both the point value and the interval;
    only when the predictor abstains (``None``) does the estimator's
    fallback chain run — so each job is predicted exactly once per
    query instead of twice.  The point value reproduces
    :meth:`PointEstimator.predict` bit for bit: same cap-at-max rule,
    same clamp to the elapsed run time.
    """
    rich = estimator.predictor.predict(job, elapsed, now)
    if rich is None:
        return estimator.predict(job, elapsed, now), 0.0
    est = rich.estimate
    if getattr(estimator, "cap_at_max", False) and job.max_run_time is not None:
        est = min(est, job.max_run_time)
    return max(est, elapsed), rich.interval / _Z90


def encode_snapshot(
    snapshot: SystemSnapshot, estimator: PointEstimator
) -> EncodedSnapshot:
    """Predict every job once and pack the snapshot into flat arrays."""
    now = snapshot.now
    run_ids = []
    run_nodes = []
    run_elapsed = []
    points = []
    sigmas = []
    for rj in snapshot.running:
        elapsed = rj.elapsed(now)
        point, sigma = _predict_once(estimator, rj.job, elapsed, now)
        run_ids.append(rj.job_id)
        run_nodes.append(rj.job.nodes)
        run_elapsed.append(elapsed)
        points.append(point)
        sigmas.append(sigma)
    queued_ids = []
    queued_nodes = []
    for qj in snapshot.queued:
        point, sigma = _predict_once(estimator, qj.job, 0.0, now)
        queued_ids.append(qj.job_id)
        queued_nodes.append(qj.job.nodes)
        points.append(point)
        sigmas.append(sigma)
    return EncodedSnapshot(
        now=now,
        total_nodes=snapshot.total_nodes,
        free_nodes=snapshot.total_nodes - sum(run_nodes),
        run_ids=tuple(run_ids),
        run_nodes=np.asarray(run_nodes, dtype=np.int64),
        run_elapsed=np.asarray(run_elapsed, dtype=np.float64),
        queued_ids=tuple(queued_ids),
        queued_nodes=np.asarray(queued_nodes, dtype=np.int64),
        point=np.asarray(points, dtype=np.float64),
        sigma=np.asarray(sigmas, dtype=np.float64),
    )


def sample_durations(
    enc: EncodedSnapshot, samples: int, rng: np.random.Generator
) -> np.ndarray:
    """``(samples, n_jobs)`` sampled run times, one draw call for all.

    Consumes the generator's stream exactly as the scalar loop did —
    one normal per (world, sigma>0 job), worlds outermost — so a fixed
    seed produces the same worlds either way.  Jobs without interval
    information keep their point estimate in every world.
    """
    spread = enc.sigma > 0
    n_spread = int(spread.sum())
    if n_spread == enc.n_jobs:
        draws = rng.standard_normal((samples, n_spread))
        return np.maximum(
            enc.point[None, :] + enc.sigma[None, :] * draws, _EPS
        )
    durations = np.repeat(
        np.maximum(enc.point, _EPS)[None, :], samples, axis=0
    )
    if n_spread:
        draws = rng.standard_normal((samples, n_spread))
        durations[:, spread] = np.maximum(
            enc.point[spread][None, :] + enc.sigma[spread][None, :] * draws, _EPS
        )
    return durations


def _seed_profile_batch(
    enc: EncodedSnapshot, durations: np.ndarray, reserves: int
) -> BatchAvailabilityProfile:
    """Batched twin of ``waitpred.fast._seed_profile``.

    ``reserves`` is the number of queue reservations the caller will
    place; each adds at most one breakpoint, so sizing the buffers for
    all of them up front avoids any mid-walk regrowth.
    """
    n_run = enc.n_running
    release_times = enc.now + np.maximum(
        durations[:, :n_run] - enc.run_elapsed[None, :], _EPS
    )
    return BatchAvailabilityProfile.from_releases(
        enc.now,
        enc.free_nodes,
        enc.total_nodes,
        release_times,
        enc.run_nodes,
        capacity=n_run + reserves + 3,
    )


def _target_pos(enc: EncodedSnapshot, target_job_id: int) -> int:
    try:
        return enc.queued_ids.index(target_job_id)
    except ValueError:
        raise KeyError(f"job {target_job_id} not in snapshot queue") from None


def fcfs_starts_batch(
    enc: EncodedSnapshot, durations: np.ndarray, target_job_id: int
) -> np.ndarray:
    """Per-world FCFS predicted starts — ``fcfs_predicted_start`` with a
    sample axis (monotone in-order planning via per-world floors)."""
    target = _target_pos(enc, target_job_id)
    profile = _seed_profile_batch(enc, durations, target + 1)
    n_run = enc.n_running
    prev_start = np.full(durations.shape[0], enc.now)
    for pos in range(target):
        dur = np.maximum(durations[:, n_run + pos], _EPS)
        prev_start = profile.reserve(
            int(enc.queued_nodes[pos]), dur, not_before=prev_start
        )
    # The target itself only needs its start, not the carve.
    dur = np.maximum(durations[:, n_run + target], _EPS)
    return profile.earliest_start(
        int(enc.queued_nodes[target]), dur, not_before=prev_start
    )


def backfill_starts_batch(
    enc: EncodedSnapshot, durations: np.ndarray, target_job_id: int
) -> np.ndarray:
    """Per-world conservative-backfill starts in the self-consistent
    imagined world — ``backfill_predicted_start`` with a sample axis."""
    target = _target_pos(enc, target_job_id)
    profile = _seed_profile_batch(enc, durations, target + 1)
    n_run = enc.n_running
    for pos in range(target):
        dur = np.maximum(durations[:, n_run + pos], BackfillPolicy.min_duration)
        profile.reserve(int(enc.queued_nodes[pos]), dur)
    # The target itself only needs its start, not the carve.
    dur = np.maximum(durations[:, n_run + target], BackfillPolicy.min_duration)
    return profile.earliest_start(int(enc.queued_nodes[target]), dur)


def scalar_starts(
    snapshot: SystemSnapshot,
    policy: Policy,
    enc: EncodedSnapshot,
    durations: np.ndarray,
    target_job_id: int,
) -> np.ndarray:
    """The retained per-world reference loop (parity oracle).

    Plans every world independently through
    :func:`repro.waitpred.fast.predict_start_fast` — exactly what the
    pre-vectorization interval query did per sample.  Kept for the
    parity property suite and the scalar arm of
    ``benchmarks/bench_wait_interval.py``; the fallback path of
    :func:`predict_starts_batch` also routes through it.
    """
    n_worlds = durations.shape[0]
    starts = np.empty(n_worlds)
    for world in range(n_worlds):
        starts[world] = predict_start_fast(
            snapshot, policy, enc.durations_dict(durations, world), target_job_id
        )
    return starts


def predict_starts_batch(
    snapshot: SystemSnapshot,
    policy: Policy,
    enc: EncodedSnapshot,
    durations: np.ndarray,
    target_job_id: int,
) -> np.ndarray:
    """Per-world predicted starts, vectorized where a shortcut is exact.

    Mirrors the dispatch of :func:`repro.waitpred.fast.predict_start_fast`
    for the self-consistent worlds the Monte-Carlo engine simulates
    (believed durations double as the scheduler's estimates): FCFS and
    conservative backfill run through the batched profile; any other
    policy falls back to the scalar per-world loop.
    """
    if isinstance(policy, FCFSPolicy):
        return fcfs_starts_batch(enc, durations, target_job_id)
    if isinstance(policy, BackfillPolicy):
        return backfill_starts_batch(enc, durations, target_job_id)
    return scalar_starts(snapshot, policy, enc, durations, target_job_id)


@dataclass(frozen=True)
class SweepPoint:
    """Schedule stability of one error level in a sensitivity sweep."""

    level: float
    mean_wait: float
    median_wait: float
    p10_wait: float
    p90_wait: float
    std_wait: float
    #: Fraction of worlds whose target start matches the unperturbed
    #: (level-0) schedule to within a relative 1e-9 — how often the
    #: schedule survives this much estimate error unchanged.
    stable_fraction: float

    @property
    def spread(self) -> float:
        return self.p90_wait - self.p10_wait


def sweep_estimates(
    snapshot: SystemSnapshot,
    policy: Policy,
    estimator: PointEstimator,
    target_job_id: int,
    *,
    levels: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5, 1.0),
    samples: int = 100,
    seed: int | np.random.Generator = 0,
) -> list[SweepPoint]:
    """Sensitivity sweep: perturb every estimate, measure wait stability.

    For each error ``level`` f, run times become
    ``point * exp(f * z)`` — the multiplicative log-normal error model
    of the misprediction harness (:mod:`repro.experiments.misprediction`)
    — and all S worlds are planned through the batched engine.  The
    same ``(samples, n_jobs)`` draw matrix is reused across levels
    (common random numbers), so differences between sweep points
    measure the error level, not sampling noise, and adjacent levels
    are directly comparable world by world.

    Returns one :class:`SweepPoint` per level, in order.  Level 0.0 is
    the deterministic point-estimate schedule (zero spread by
    construction) and anchors the ``stable_fraction`` of every other
    level.
    """
    if samples < 2:
        raise ValueError("samples must be >= 2")
    if any(level < 0 for level in levels):
        raise ValueError("error levels must be >= 0")
    rng = rng_from_seed(seed)
    enc = encode_snapshot(snapshot, estimator)
    draws = rng.standard_normal((samples, enc.n_jobs))
    base = np.maximum(enc.point, _EPS)[None, :]
    baseline = predict_starts_batch(
        snapshot, policy, enc, np.repeat(base, 1, axis=0), target_job_id
    )[0]
    tolerance = 1e-9 * max(abs(baseline), 1.0)
    points = []
    for level in levels:
        if level == 0.0:
            durations = np.repeat(base, samples, axis=0)
        else:
            durations = np.maximum(
                enc.point[None, :] * np.exp(level * draws), _EPS
            )
        starts = predict_starts_batch(
            snapshot, policy, enc, durations, target_job_id
        )
        waits = starts - enc.now
        points.append(
            SweepPoint(
                level=float(level),
                mean_wait=float(waits.mean()),
                median_wait=float(np.median(waits)),
                p10_wait=float(np.percentile(waits, 10.0)),
                p90_wait=float(np.percentile(waits, 90.0)),
                std_wait=float(waits.std()),
                stable_fraction=float(
                    np.mean(np.abs(starts - baseline) <= tolerance)
                ),
            )
        )
    return points
