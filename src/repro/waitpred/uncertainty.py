"""Wait-time prediction *intervals* by propagating run-time uncertainty.

The paper's predictor produces a confidence interval alongside every
run-time estimate (§2.1) but the wait-time technique only consumes the
point value.  This extension propagates the uncertainty: sample each
job's run time from its prediction interval, forward-simulate the
scheduler over every sampled world (using the exact analytic shortcuts
where available), and report percentiles of the resulting wait — the
kind of answer a resource-selection broker actually needs ("90% chance
the job starts within 40 minutes").

Jobs whose prediction came from the fallback chain (no interval
information) keep their point estimate with zero spread.  Each job is
predicted exactly once per query: the rich prediction supplies both the
point value and the interval, and the estimator's fallback chain runs
only for jobs the predictor abstains on.

The sampled worlds are planned by the vectorized many-worlds engine
(:mod:`repro.waitpred.manyworlds`): all ``samples`` worlds advance at
once through a batched availability profile, so interval queries with
hundreds of samples cost a handful of array passes rather than hundreds
of scalar replays.

Determinism contract
--------------------
``seed`` may be an int or an ``np.random.Generator``.  An int seeds a
fresh generator, so equal ``(snapshot, policy, estimator history, seed,
samples)`` always produce equal intervals — bit-identical to the scalar
per-world loop the engine replaced (the parity suite in
``tests/test_properties_uncertainty.py`` enforces this).  A Generator is
used in place without re-wrapping: its stream advances by exactly one
``standard_normal((samples, k))`` fill (k = jobs with interval
information), letting callers thread one stream through many queries
reproducibly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.predictors.base import PointEstimator
from repro.scheduler.policies.base import Policy
from repro.scheduler.simulator import SystemSnapshot
from repro.utils.rng import rng_from_seed
from repro.waitpred.manyworlds import (
    encode_snapshot,
    predict_starts_batch,
    sample_durations,
)

__all__ = ["WaitInterval", "predict_wait_interval"]


@dataclass(frozen=True)
class WaitInterval:
    """Percentiles of the predicted wait over sampled run-time worlds."""

    median: float
    lo: float
    hi: float
    confidence: float
    samples: int
    #: The full per-world wait vector the percentiles were cut from,
    #: retained so brokers can ask distribution questions directly.
    wait_samples: tuple[float, ...] = field(default=(), repr=False)

    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def mean(self) -> float:
        """Mean predicted wait over the sampled worlds."""
        if not self.wait_samples:
            raise ValueError("wait samples were not retained")
        return float(np.mean(self.wait_samples))

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the sampled waits (0 <= q <= 100).

        ``percentile(90.0)`` answers "the job starts within X with 90%
        confidence" without re-deriving X from ``lo``/``hi``.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.wait_samples:
            raise ValueError("wait samples were not retained")
        return float(np.percentile(self.wait_samples, q))


def predict_wait_interval(
    snapshot: SystemSnapshot,
    policy: Policy,
    estimator: PointEstimator,
    target_job_id: int,
    *,
    samples: int = 30,
    confidence: float = 0.80,
    seed: int | np.random.Generator = 0,
) -> WaitInterval:
    """Monte-Carlo wait interval for ``target_job_id``.

    ``estimator`` must wrap the run-time predictor whose prediction
    intervals drive the sampling (its fallback chain supplies point
    values for jobs the predictor cannot cover).
    """
    if samples < 2:
        raise ValueError("samples must be >= 2")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    rng = rng_from_seed(seed)
    enc = encode_snapshot(snapshot, estimator)
    durations = sample_durations(enc, samples, rng)
    starts = predict_starts_batch(snapshot, policy, enc, durations, target_job_id)
    waits = starts - snapshot.now

    half = 100.0 * (1.0 - confidence) / 2.0
    return WaitInterval(
        median=float(np.median(waits)),
        lo=float(np.percentile(waits, half)),
        hi=float(np.percentile(waits, 100.0 - half)),
        confidence=confidence,
        samples=samples,
        wait_samples=tuple(float(w) for w in waits),
    )
