"""Wait-time prediction *intervals* by propagating run-time uncertainty.

The paper's predictor produces a confidence interval alongside every
run-time estimate (§2.1) but the wait-time technique only consumes the
point value.  This extension propagates the uncertainty: sample each
job's run time from its prediction interval, forward-simulate the
scheduler over every sampled world (using the exact analytic shortcuts
where available), and report percentiles of the resulting wait — the
kind of answer a resource-selection broker actually needs ("90% chance
the job starts within 40 minutes").

Jobs whose prediction came from the fallback chain (no interval
information) keep their point estimate with zero spread.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.predictors.base import PointEstimator
from repro.scheduler.policies.base import Policy
from repro.scheduler.simulator import SystemSnapshot
from repro.utils.rng import rng_from_seed
from repro.waitpred.fast import predict_start_fast

__all__ = ["WaitInterval", "predict_wait_interval"]

#: z-score matching the predictors' default 90% two-sided interval; the
#: sampled run-time distribution is Normal(estimate, half_width / z).
_Z90 = 1.645


@dataclass(frozen=True)
class WaitInterval:
    """Percentiles of the predicted wait over sampled run-time worlds."""

    median: float
    lo: float
    hi: float
    confidence: float
    samples: int

    @property
    def width(self) -> float:
        return self.hi - self.lo


def predict_wait_interval(
    snapshot: SystemSnapshot,
    policy: Policy,
    estimator: PointEstimator,
    target_job_id: int,
    *,
    samples: int = 30,
    confidence: float = 0.80,
    seed: int | np.random.Generator = 0,
) -> WaitInterval:
    """Monte-Carlo wait interval for ``target_job_id``.

    ``estimator`` must wrap the run-time predictor whose prediction
    intervals drive the sampling (its fallback chain supplies point
    values for jobs the predictor cannot cover).
    """
    if samples < 2:
        raise ValueError("samples must be >= 2")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    rng = rng_from_seed(seed)
    now = snapshot.now

    # Per job: (point estimate, sigma) — running jobs conditioned on age.
    params: dict[int, tuple[float, float]] = {}
    for rj in snapshot.running:
        elapsed = rj.elapsed(now)
        point = estimator.predict(rj.job, elapsed, now)
        rich = estimator.predictor.predict(rj.job, elapsed, now)
        sigma = (rich.interval / _Z90) if rich is not None else 0.0
        params[rj.job_id] = (point, sigma)
    for qj in snapshot.queued:
        point = estimator.predict(qj.job, 0.0, now)
        rich = estimator.predictor.predict(qj.job, 0.0, now)
        sigma = (rich.interval / _Z90) if rich is not None else 0.0
        params[qj.job_id] = (point, sigma)

    waits = np.empty(samples)
    for s in range(samples):
        durations = {
            jid: max(point + sigma * float(rng.standard_normal()), 1e-6)
            if sigma > 0
            else max(point, 1e-6)
            for jid, (point, sigma) in params.items()
        }
        start = predict_start_fast(snapshot, policy, durations, target_job_id)
        waits[s] = start - now

    half = 100.0 * (1.0 - confidence) / 2.0
    return WaitInterval(
        median=float(np.median(waits)),
        lo=float(np.percentile(waits, half)),
        hi=float(np.percentile(waits, 100.0 - half)),
        confidence=confidence,
        samples=samples,
    )
