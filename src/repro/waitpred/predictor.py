"""Wait-time prediction by forward simulation.

:class:`WaitTimePredictor` attaches to a :class:`repro.scheduler.Simulator`
as an observer.  It owns its *own* run-time predictor — distinct from the
estimator the scheduler itself runs on (in the paper's §3 experiments the
scheduler always works from user maxima, while the evaluated predictor
varies) — and keeps that predictor's history current from the stream of
real completions.

At each submission it freezes two numbers per job in the system:

- a **duration** from its own predictor — what the job's run time is
  believed to actually be;
- a **scheduler estimate** from the real scheduler's estimator — what the
  simulated scheduler will base ordering/reservation decisions on.

and calls :func:`repro.scheduler.simulator.forward_simulate` to learn
when the new job would start in that predicted future.  Keeping the two
separate is what gives the paper its tiny built-in backfill error
(Table 4): with perfect durations the imagined schedule replays the real
scheduler's decisions exactly, later arrivals aside.
"""

from __future__ import annotations

from repro.predictors.base import PointEstimator, RuntimePredictor
from repro.scheduler.policies.base import Policy
from repro.scheduler.simulator import (
    QueuedJob,
    RuntimeEstimator,
    SchedulerView,
    SystemSnapshot,
    forward_simulate,
)
from repro.waitpred.fast import UnknownJobError
from repro.workloads.job import Job

__all__ = ["WaitTimePredictor", "predict_wait"]


def _freeze(
    snapshot: SystemSnapshot, estimator: RuntimeEstimator
) -> dict[int, float]:
    """One prediction per job in the snapshot (running conditioned on age)."""
    now = snapshot.now
    out: dict[int, float] = {}
    for rj in snapshot.running:
        out[rj.job_id] = estimator.predict(rj.job, rj.elapsed(now), now)
    for qj in snapshot.queued:
        out[qj.job_id] = estimator.predict(qj.job, 0.0, now)
    return out


def predict_wait(
    snapshot: SystemSnapshot,
    policy: Policy,
    estimator: PointEstimator,
    target_job_id: int,
    *,
    scheduler_estimator: RuntimeEstimator | None = None,
    fast: bool = True,
) -> float:
    """Predicted wait (seconds) of ``target_job_id`` from ``snapshot``.

    ``estimator`` supplies the believed durations; ``scheduler_estimator``
    (default: the same) supplies the estimates the simulated scheduler
    decides by.  ``fast`` routes through the analytic shortcuts of
    :mod:`repro.waitpred.fast` where they are exact (identical results,
    much cheaper for long FCFS queues).

    Raises :class:`repro.waitpred.fast.UnknownJobError` when
    ``target_job_id`` is not in the snapshot's queue — already running,
    already finished, or never submitted.  Callers that want "job has
    started, wait is over" semantics (the prediction service) translate
    running jobs to a 0.0 wait before reaching this point.
    """
    if all(qj.job_id != target_job_id for qj in snapshot.queued):
        raise UnknownJobError(target_job_id)
    durations = _freeze(snapshot, estimator)
    estimates = (
        _freeze(snapshot, scheduler_estimator)
        if scheduler_estimator is not None
        else None
    )
    if fast:
        from repro.waitpred.fast import predict_start_fast

        start = predict_start_fast(
            snapshot, policy, durations, target_job_id, estimates=estimates
        )
    else:
        start = forward_simulate(
            snapshot, policy, durations, target_job_id, estimates=estimates
        )
    return start - snapshot.now


class WaitTimePredictor:
    """Simulator observer predicting each job's wait at submission."""

    def __init__(
        self,
        policy: Policy,
        predictor: RuntimePredictor,
        *,
        scheduler_estimator: RuntimeEstimator | None = None,
        default: float = 600.0,
        fall_back_to_max: bool = True,
        fast: bool = True,
        instrumentation=None,
    ) -> None:
        self.policy = policy
        self.estimator = PointEstimator(
            predictor, default=default, fall_back_to_max=fall_back_to_max
        )
        self.scheduler_estimator = scheduler_estimator
        self.fast = fast
        #: job_id -> predicted wait in seconds, recorded at submission.
        self.predicted_waits: dict[int, float] = {}
        # Prediction audit (see repro.obs.audit): record each wait
        # prediction under the forward-simulation id; the simulator
        # resolves it against the realized wait at the job's start.
        self._audit = getattr(instrumentation, "audit", None)

    # -- observer hooks --------------------------------------------------
    def on_submit(self, view: SchedulerView, qj: QueuedJob) -> None:
        snapshot = SystemSnapshot(
            now=view.now,
            running=tuple(view.running),
            queued=tuple(view.queued),
            total_nodes=view.total_nodes,
        )
        predicted = predict_wait(
            snapshot,
            self.policy,
            self.estimator,
            qj.job_id,
            scheduler_estimator=self.scheduler_estimator,
            fast=self.fast,
        )
        self.predicted_waits[qj.job_id] = predicted
        if self._audit is not None:
            self._audit.record_wait(
                qj.job_id,
                view.now,
                predicted,
                predictor="forward-sim",
                source=self.estimator.name,
            )

    def on_finish(self, view: SchedulerView, job: Job) -> None:
        # Historical predictors ingest completions as they happen (§2.1).
        self.estimator.on_finish(job, view.now)
