"""Scoring wait-time predictions against the realized schedule.

The paper's Tables 4-9 report, per (workload, algorithm, predictor), the
mean absolute wait-time prediction error in minutes and that error as a
percentage of the mean (actual) wait time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scheduler.metrics import ScheduleResult
from repro.utils.timeutils import seconds_to_minutes

__all__ = ["WaitPredictionReport", "evaluate_wait_predictions"]


@dataclass(frozen=True)
class WaitPredictionReport:
    """Aggregate accuracy of wait-time predictions over one run."""

    n_jobs: int
    mean_abs_error: float  # seconds
    mean_wait: float  # seconds, of the realized schedule
    median_abs_error: float = 0.0  # seconds
    p90_abs_error: float = 0.0  # seconds

    @property
    def mean_abs_error_minutes(self) -> float:
        return seconds_to_minutes(self.mean_abs_error)

    @property
    def median_abs_error_minutes(self) -> float:
        return seconds_to_minutes(self.median_abs_error)

    @property
    def p90_abs_error_minutes(self) -> float:
        return seconds_to_minutes(self.p90_abs_error)

    @property
    def mean_wait_minutes(self) -> float:
        return seconds_to_minutes(self.mean_wait)

    @property
    def percent_of_mean_wait(self) -> float:
        """Mean error as a percentage of mean wait (the paper's column)."""
        if self.mean_wait <= 0:
            return 0.0
        return 100.0 * self.mean_abs_error / self.mean_wait


def evaluate_wait_predictions(
    result: ScheduleResult, predicted_waits: dict[int, float]
) -> WaitPredictionReport:
    """Compare predicted waits with the realized waits of ``result``.

    Every scheduled job must have a prediction; a missing one indicates
    the observer was not attached for the whole run and raises.
    """
    errors = []
    waits = []
    for rec in result.records:
        try:
            predicted = predicted_waits[rec.job_id]
        except KeyError:
            raise KeyError(
                f"no wait-time prediction recorded for job {rec.job_id}"
            ) from None
        errors.append(abs(predicted - rec.wait_time))
        waits.append(rec.wait_time)
    n = len(errors)
    return WaitPredictionReport(
        n_jobs=n,
        mean_abs_error=float(np.mean(errors)) if n else 0.0,
        mean_wait=float(np.mean(waits)) if n else 0.0,
        median_abs_error=float(np.median(errors)) if n else 0.0,
        p90_abs_error=float(np.percentile(errors, 90)) if n else 0.0,
    )
