"""Queue wait-time prediction (paper §3).

When a job is submitted, predict the run time of every job in the system
(conditioning running jobs on their elapsed time), then simulate the
scheduler forward over those predictions — with no future arrivals — to
find when the new job would start.  The difference between that start and
the submission time is the predicted wait.

- :mod:`repro.waitpred.predictor` — the simulator observer that issues a
  prediction at every submission;
- :mod:`repro.waitpred.evaluation` — error accounting against the actual
  waits of the real schedule (the paper's mean-error-in-minutes and
  percentage-of-mean-wait columns).
"""

from repro.waitpred.predictor import WaitTimePredictor, predict_wait
from repro.waitpred.evaluation import WaitPredictionReport, evaluate_wait_predictions
from repro.waitpred.fast import (
    UnknownJobError,
    backfill_predicted_start,
    backfill_predicted_starts,
    fcfs_predicted_start,
    fcfs_predicted_starts,
    predict_start_fast,
)
from repro.waitpred.manyworlds import (
    EncodedSnapshot,
    SweepPoint,
    encode_snapshot,
    predict_starts_batch,
    sample_durations,
    scalar_starts,
    sweep_estimates,
)
from repro.waitpred.statebased import (
    DEFAULT_STATE_TEMPLATES,
    StateBasedWaitPredictor,
    StateFeatures,
    StateTemplate,
)
from repro.waitpred.uncertainty import WaitInterval, predict_wait_interval

__all__ = [
    "WaitTimePredictor",
    "predict_wait",
    "WaitPredictionReport",
    "evaluate_wait_predictions",
    "UnknownJobError",
    "fcfs_predicted_start",
    "fcfs_predicted_starts",
    "backfill_predicted_start",
    "backfill_predicted_starts",
    "predict_start_fast",
    "StateBasedWaitPredictor",
    "StateFeatures",
    "StateTemplate",
    "DEFAULT_STATE_TEMPLATES",
    "WaitInterval",
    "predict_wait_interval",
    "EncodedSnapshot",
    "SweepPoint",
    "encode_snapshot",
    "sample_durations",
    "predict_starts_batch",
    "scalar_starts",
    "sweep_estimates",
]
