"""State-based queue wait-time prediction (the paper's §5 future work).

The paper closes by proposing an alternative to forward simulation:

    "This method will use the current state of the scheduling system
    (number of applications in each queue, time of day, etc.) and
    historical information on queue wait times during similar past
    states to predict queue wait times.  We hope this technique will
    improve wait-time prediction error, particularly for the LWF
    algorithm, which has a large built-in error using the technique
    presented here."

This module implements that method with the same machinery as the
run-time predictor: *state templates* name the features of the
(scheduler state, job) pair that make two submission instants similar;
observed waits accumulate in per-template categories; the prediction is
the mean of the category with the smallest confidence interval.

Features (all discretized):

- ``qlen``  — number of queued jobs, log2-binned;
- ``qwork`` — total queued estimated work (node-seconds), log10-binned;
- ``free``  — free-node fraction, quartile-binned;
- ``nodes`` — the submitted job's node request, exponentially binned;
- ``rt``    — the submitted job's estimated run time, log10-binned;
- ``tod``   — time of day, 6-hour bins;
- ``dow``   — weekday vs. weekend.

Because a job's wait is only known when it starts, insertion happens at
start time; like the run-time predictor, the technique has a ramp-up
phase during which a fallback (the running mean of observed waits) is
used.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.obs import Instrumentation
from repro.predictors.base import PointEstimator
from repro.stats.ci import RunningMoments
from repro.utils.timeutils import DAY, HOUR
from repro.workloads.job import Job

__all__ = [
    "StateFeatures",
    "StateTemplate",
    "DEFAULT_STATE_TEMPLATES",
    "StateBasedWaitPredictor",
]

_FEATURE_NAMES = ("qlen", "qwork", "free", "nodes", "rt", "tod", "dow")


@dataclass(frozen=True)
class StateFeatures:
    """Discretized features of one submission instant."""

    qlen: int
    qwork: int
    free: int
    nodes: int
    rt: int
    tod: int
    dow: int

    @classmethod
    def extract(
        cls,
        *,
        now: float,
        queued_count: int,
        queued_work: float,
        free_nodes: int,
        total_nodes: int,
        job_nodes: int,
        job_runtime_estimate: float,
    ) -> "StateFeatures":
        return cls(
            qlen=_log2_bin(queued_count),
            qwork=_log10_bin(queued_work),
            free=min(int(4.0 * free_nodes / total_nodes), 3),
            nodes=_log2_bin(job_nodes),
            rt=_log10_bin(job_runtime_estimate),
            tod=int((now % DAY) // (6 * HOUR)),
            dow=1 if int(now // DAY) % 7 >= 5 else 0,
        )

    def key(self, features: Sequence[str]) -> tuple:
        return tuple(getattr(self, f) for f in features)


def _log2_bin(value: float) -> int:
    """Bin ``value`` by magnitude: 0 for < 1, else floor(log2) + 1.

    Integer bit-length arithmetic instead of ``int(math.log2(value))``:
    float log2 can land *exact* powers of two one bin off depending on
    the platform's libm rounding (e.g. ``log2(2**29)`` evaluating to
    28.999...), and a paper-reproduction category scheme must bin
    identically everywhere.  ``int(value)`` is exact for every float,
    and ``bit_length`` of the truncated integer is exactly
    ``floor(log2(value)) + 1`` for ``value >= 1``.
    """
    if value < 1:
        return 0
    return int(value).bit_length()


def _log10_bin(value: float) -> int:
    """Bin ``value`` by decade: 0 for < 1, else floor(log10) + 1.

    ``int(math.log10(value))`` suffers the same platform-dependent
    boundary instability as ``log2`` (``log10(1000)`` evaluating to
    2.999... puts an exact power in the previous decade); the exponent
    is corrected against exact powers of ten, which are exactly
    representable as floats well past the 10**12 range the features use.
    """
    if value < 1:
        return 0
    exponent = int(math.log10(value))
    # Re-anchor on exact powers: libm error is far below one decade, so
    # at most one step of correction in either direction is needed.
    if 10.0 ** (exponent + 1) <= value:
        exponent += 1
    elif 10.0 ** exponent > value:
        exponent -= 1
    return exponent + 1


@dataclass(frozen=True)
class StateTemplate:
    """A similarity template over scheduler-state features."""

    features: tuple[str, ...] = ()
    max_history: int | None = None

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for f in self.features:
            if f not in _FEATURE_NAMES:
                raise ValueError(
                    f"unknown state feature {f!r}; expected one of {_FEATURE_NAMES}"
                )
            if f in seen:
                raise ValueError(f"duplicate state feature {f!r}")
            seen.add(f)
        if self.max_history is not None and self.max_history < 2:
            raise ValueError("max_history must be >= 2")

    def describe(self) -> str:
        return "(" + ", ".join(self.features) + ")"


#: A reasonable default set: overall state, per-size state, diurnal state.
DEFAULT_STATE_TEMPLATES: tuple[StateTemplate, ...] = (
    StateTemplate(()),
    StateTemplate(("qlen",)),
    StateTemplate(("qlen", "free")),
    StateTemplate(("qlen", "nodes")),
    StateTemplate(("qwork", "nodes")),
    StateTemplate(("qlen", "qwork", "nodes")),
    StateTemplate(("qlen", "tod")),
    StateTemplate(("qlen", "nodes", "rt")),
)


class _WaitCategory:
    """Bounded history of observed waits with incremental moments."""

    def __init__(self, max_history: int | None) -> None:
        self.max_history = max_history
        self._values: deque[float] = deque()
        self._moments = RunningMoments()

    def add(self, wait: float) -> None:
        if self.max_history is not None and len(self._values) >= self.max_history:
            self._moments.remove(self._values.popleft())
        self._values.append(wait)
        self._moments.add(wait)

    def interval(self, confidence: float) -> tuple[float, float] | None:
        if self._moments.count < 2:
            return None
        return self._moments.interval(confidence)

    def __len__(self) -> int:
        return len(self._values)


class StateBasedWaitPredictor:
    """Wait-time prediction from similar past scheduler states.

    Attach to a :class:`repro.scheduler.Simulator` as an observer, like
    :class:`repro.waitpred.predictor.WaitTimePredictor`; the two expose
    the same ``predicted_waits`` mapping, so
    :func:`repro.waitpred.evaluation.evaluate_wait_predictions` scores
    both.

    ``runtime_estimator`` supplies the job's run-time estimate used as
    the ``rt`` feature (the templates decide whether it matters).
    """

    def __init__(
        self,
        runtime_estimator: PointEstimator,
        *,
        templates: Iterable[StateTemplate] = DEFAULT_STATE_TEMPLATES,
        confidence: float = 0.90,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.templates: tuple[StateTemplate, ...] = tuple(templates)
        if not self.templates:
            raise ValueError("at least one state template required")
        if not 0 < confidence < 1:
            raise ValueError("confidence must be in (0, 1)")
        self.runtime_estimator = runtime_estimator
        self.confidence = confidence
        self.predicted_waits: dict[int, float] = {}
        self._categories: dict[tuple[int, tuple], _WaitCategory] = {}
        self._pending: dict[int, tuple[float, StateFeatures]] = {}
        self._wait_moments = RunningMoments()
        #: Per-job runtime estimates feeding the qwork/rt features, valid
        #: while the estimator's history_epoch is unchanged (see
        #: _features).  Keeps a burst of submissions at O(queue) instead
        #: of O(queue^2) estimator calls.
        self._estimate_cache: dict[int, float] = {}
        self._estimate_cache_epoch: object = object()  # != any epoch: first use clears
        obs = instrumentation if instrumentation is not None else Instrumentation()
        self.obs = obs
        reg = obs.registry
        self._tracer = obs.tracer
        self._audit = obs.audit
        self._c_predictions = reg.counter("statebased.predictions")
        self._c_rampup = reg.counter("statebased.rampup_fallbacks")
        self._c_observations = reg.counter("statebased.observations")
        self._g_categories = reg.gauge("statebased.categories")

    # ------------------------------------------------------------------
    def _shared_estimate_cache(self) -> dict[int, float]:
        """The per-job estimate memo valid for the estimator's current epoch.

        Same contract as the simulator's estimate cache
        (:mod:`repro.predictors.base`): an epoch-aware estimator promises
        its predictions for a fixed ``(job, elapsed)`` are unchanged
        while ``history_epoch`` is unchanged, so each queued job's
        runtime estimate may be computed once per epoch instead of once
        per submission — a burst of arrivals costs O(queue) estimator
        calls, not O(queue^2).  Estimators without an epoch (or volatile
        ones advertising ``None``) get a fresh dict per call: the
        historical recompute-everything behaviour.
        """
        epoch = getattr(self.runtime_estimator, "history_epoch", None)
        if epoch is None:
            return {}
        if epoch != self._estimate_cache_epoch:
            self._estimate_cache_epoch = epoch
            self._estimate_cache.clear()
        return self._estimate_cache

    def _features(self, view, job: Job) -> StateFeatures:
        now = view.now
        estimator = self.runtime_estimator
        cache = self._shared_estimate_cache()
        queued_work = 0.0
        for qj in view.queued:
            if qj.job_id == job.job_id:
                continue
            est = cache.get(qj.job_id)
            if est is None:
                est = estimator.predict(qj.job, 0.0, now)
                cache[qj.job_id] = est
            # Multiply per use (cheap, deterministic) rather than caching
            # the product, so the qwork sum is bit-identical to the
            # uncached path.
            queued_work += qj.job.nodes * est
        job_estimate = cache.get(job.job_id)
        if job_estimate is None:
            job_estimate = estimator.predict(job, 0.0, now)
            cache[job.job_id] = job_estimate
        return StateFeatures.extract(
            now=now,
            queued_count=max(len(view.queued) - 1, 0),  # exclude the new job
            queued_work=queued_work,
            free_nodes=view.free_nodes,
            total_nodes=view.total_nodes,
            job_nodes=job.nodes,
            job_runtime_estimate=job_estimate,
        )

    def predict_from_features(self, features: StateFeatures) -> float | None:
        """Smallest-CI category mean across templates, or ``None``."""
        result = self._predict_with_source(features)
        return None if result is None else result[0]

    def _predict_with_source(
        self, features: StateFeatures
    ) -> tuple[float, str] | None:
        """The prediction plus the winning template's description (for
        the audit trail's per-template drill-down)."""
        best: tuple[float, float, int] | None = None  # (half width, est, idx)
        for idx, template in enumerate(self.templates):
            cat = self._categories.get((idx, features.key(template.features)))
            if cat is None:
                continue
            result = cat.interval(self.confidence)
            if result is None:
                continue
            est, hw = result
            if best is None or hw < best[0]:
                best = (hw, est, idx)
        if best is None:
            return None
        return max(best[1], 0.0), self.templates[best[2]].describe()

    # ------------------------------------------------------------------
    # observer hooks
    # ------------------------------------------------------------------
    def on_submit(self, view, qj) -> None:
        features = self._features(view, qj.job)
        result = self._predict_with_source(features)
        rampup = result is None
        if rampup:
            # Ramp-up fallback: the running mean of all observed waits.
            predicted = (
                self._wait_moments.mean if self._wait_moments.count > 0 else 0.0
            )
            source = "rampup"
            self._c_rampup.value += 1
        else:
            predicted, source = result
        self._c_predictions.value += 1
        self.predicted_waits[qj.job_id] = predicted
        self._pending[qj.job_id] = (view.now, features)
        if self._audit is not None:
            # The audit emits the (richer) wait_predicted event itself
            # and will pair it with the realized wait at start.
            self._audit.record_wait(
                qj.job_id,
                view.now,
                predicted,
                predictor="state-based",
                source=source,
            )
        elif self._tracer.enabled:
            self._tracer.emit(
                "wait_predicted",
                sim_time=view.now,
                job_id=qj.job_id,
                cause="rampup_fallback" if rampup else "state_category",
                predicted_wait_s=predicted,
            )

    def on_start(self, view, job: Job) -> None:
        entry = self._pending.pop(job.job_id, None)
        if entry is None:
            return  # job predates the observer's attachment
        submitted_at, features = entry
        wait = view.now - submitted_at
        self._wait_moments.add(wait)
        for idx, template in enumerate(self.templates):
            key = (idx, features.key(template.features))
            cat = self._categories.get(key)
            if cat is None:
                cat = self._categories[key] = _WaitCategory(template.max_history)
            cat.add(wait)
        self._c_observations.value += 1
        self._g_categories.set(len(self._categories))
        # The job has left the queue; under an epoch-frozen estimator its
        # memoized estimate would otherwise linger forever.
        self._estimate_cache.pop(job.job_id, None)

    def on_finish(self, view, job: Job) -> None:
        # Keep the run-time estimator's history current for the rt feature.
        self.runtime_estimator.on_finish(job, view.now)

    @property
    def category_count(self) -> int:
        return len(self._categories)
