"""repro — reproduction of Smith, Taylor & Foster (IPPS 1999).

*Using Run-Time Predictions to Estimate Queue Wait Times and Improve
Scheduler Performance.*

The package is organized bottom-up:

- :mod:`repro.workloads` — job/trace records, SWF I/O, synthetic
  generators for the four paper workloads (ANL, CTC, SDSC95, SDSC96);
- :mod:`repro.stats` — confidence intervals and regressions;
- :mod:`repro.scheduler` — the event-driven FCFS/LWF/backfill simulator;
- :mod:`repro.predictors` — run-time predictors (Smith templates + GA
  search, Gibbons, Downey, actual, user maxima);
- :mod:`repro.waitpred` — wait-time prediction by forward simulation;
- :mod:`repro.core` — experiment drivers regenerating every paper table;
- :mod:`repro.experiments` — harnesses beyond the paper's grids
  (misprediction cost: injected error → schedule degradation).

Quickstart::

    from repro import load_paper_workload, run_scheduling_experiment

    trace = load_paper_workload("ANL", n_jobs=2000)
    cell, result = run_scheduling_experiment(trace, "backfill", "smith")
    print(cell.utilization_percent, cell.mean_wait_minutes)
"""

from repro._version import __version__
from repro.workloads import (
    Job,
    Trace,
    load_paper_workload,
    generate_trace,
    SyntheticWorkloadSpec,
    compress_interarrival,
    summarize,
    feitelson_trace,
)
from repro.scheduler import validate_schedule
from repro.predictors import (
    SmithPredictor,
    GibbonsPredictor,
    DowneyPredictor,
    ActualRuntimePredictor,
    MaxRuntimePredictor,
    Template,
    PointEstimator,
    search_templates,
    GAConfig,
)
from repro.scheduler import (
    Simulator,
    FCFSPolicy,
    LWFPolicy,
    BackfillPolicy,
    EASYBackfillPolicy,
    Reservation,
    forward_simulate,
)
from repro.waitpred import (
    WaitTimePredictor,
    predict_wait,
    predict_wait_interval,
    evaluate_wait_predictions,
    StateBasedWaitPredictor,
)
from repro.predictors import (
    warm_start,
    OnlineMeanPredictor,
    OnlineRegressionPredictor,
    DecayedMeanPredictor,
)
from repro.experiments import (
    ErrorModel,
    NoisyPredictor,
    run_misprediction_campaign,
    run_misprediction_experiment,
)
from repro.core import (
    run_wait_time_experiment,
    run_scheduling_experiment,
    run_runtime_prediction_experiment,
    run_wait_time_table,
    run_scheduling_table,
    make_policy,
    make_predictor,
    format_table,
)

__all__ = [
    "__version__",
    "Job",
    "Trace",
    "load_paper_workload",
    "generate_trace",
    "SyntheticWorkloadSpec",
    "compress_interarrival",
    "summarize",
    "feitelson_trace",
    "validate_schedule",
    "SmithPredictor",
    "GibbonsPredictor",
    "DowneyPredictor",
    "ActualRuntimePredictor",
    "MaxRuntimePredictor",
    "Template",
    "PointEstimator",
    "search_templates",
    "GAConfig",
    "Simulator",
    "FCFSPolicy",
    "LWFPolicy",
    "BackfillPolicy",
    "EASYBackfillPolicy",
    "Reservation",
    "forward_simulate",
    "WaitTimePredictor",
    "predict_wait",
    "predict_wait_interval",
    "evaluate_wait_predictions",
    "StateBasedWaitPredictor",
    "warm_start",
    "OnlineMeanPredictor",
    "OnlineRegressionPredictor",
    "DecayedMeanPredictor",
    "ErrorModel",
    "NoisyPredictor",
    "run_misprediction_campaign",
    "run_misprediction_experiment",
    "run_wait_time_experiment",
    "run_scheduling_experiment",
    "run_runtime_prediction_experiment",
    "run_wait_time_table",
    "run_scheduling_table",
    "make_policy",
    "make_predictor",
    "format_table",
]
