"""Time constants and formatting helpers.

Simulation time throughout the library is a float number of **seconds**
since the start of the trace.  The paper reports wait times and errors in
minutes; the helpers here convert and pretty-print.
"""

from __future__ import annotations

__all__ = [
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "minutes",
    "seconds_to_minutes",
    "format_duration",
]

MINUTE = 60.0
HOUR = 60.0 * MINUTE
DAY = 24.0 * HOUR
WEEK = 7.0 * DAY


def minutes(m: float) -> float:
    """Convert a duration in minutes to simulation seconds."""
    return m * MINUTE


def seconds_to_minutes(s: float) -> float:
    """Convert simulation seconds to minutes."""
    return s / MINUTE


def format_duration(seconds: float) -> str:
    """Render a duration in a compact human-readable ``1d 02:03:04`` form."""
    neg = seconds < 0
    s = abs(seconds)
    days, s = divmod(s, DAY)
    hours, s = divmod(s, HOUR)
    mins, secs = divmod(s, MINUTE)
    core = f"{int(hours):02d}:{int(mins):02d}:{int(secs):02d}"
    if days >= 1:
        core = f"{int(days)}d {core}"
    return f"-{core}" if neg else core
