"""Small shared utilities: deterministic RNG plumbing and time helpers."""

from repro.utils.rng import spawn_rng, rng_from_seed
from repro.utils.timeutils import (
    MINUTE,
    HOUR,
    DAY,
    WEEK,
    format_duration,
    minutes,
    seconds_to_minutes,
)

__all__ = [
    "spawn_rng",
    "rng_from_seed",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "format_duration",
    "minutes",
    "seconds_to_minutes",
]
