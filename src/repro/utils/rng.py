"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (synthetic workload generation,
the genetic template search) accepts either an integer seed or a
:class:`numpy.random.Generator`.  These helpers normalize the two and let a
parent generator derive independent child streams so that adding a new
consumer of randomness never perturbs existing streams.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rng_from_seed", "spawn_rng"]


def rng_from_seed(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh OS entropy), an integer, or an existing
    generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, *, count: int = 1) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Children are produced through :meth:`numpy.random.Generator.spawn` so the
    streams are statistically independent of the parent and each other.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return list(rng.spawn(count))
