"""The Feitelson workload model — an independent synthetic generator.

The paper grounds its similarity premise in Feitelson & Nitzberg's
characterization of production parallel workloads (ref. [5]): jobs come
in **repeated runs** of the same program, node requests cluster on
**powers of two** with a harmonic-ish size distribution, and run times
are heavy-tailed with a mild positive correlation to job size.
Feitelson's 1996 model distills those observations into a generative
recipe, reimplemented here.

Having a second, independently-derived generator matters for the
reproduction: the shape claims asserted in ``benchmarks/`` should hold
on *any* workload with the observed structure, not just on
:mod:`repro.workloads.synthetic`'s particular construction.
``benchmarks/bench_robustness_feitelson.py`` re-checks the headline
shapes on this model.

Model components:

1. **Sizes** — powers of two up to the machine size carry most of the
   probability (harmonic weights ``1/rank``); with probability
   ``other_size_prob`` the size is perturbed off the power of two.
2. **Run times** — a three-stage hyper-exponential whose stage means
   scale mildly with job size (the observed size/run-time correlation).
3. **Repeated runs** — each generated "program" is submitted
   ``r ~ Zipf(repeat_alpha)`` times (capped), successive runs separated
   by exponential think times; reruns share user/executable identity
   and jitter around the program's base run time.
4. **Arrivals** — program start times form a Poisson process spanned to
   hit a target offered load.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import rng_from_seed, spawn_rng
from repro.utils.timeutils import HOUR, MINUTE
from repro.workloads.job import Job, Trace

__all__ = ["feitelson_trace"]


def _harmonic_size(rng: np.random.Generator, total_nodes: int,
                   other_size_prob: float) -> int:
    max_exp = int(math.floor(math.log2(total_nodes)))
    ranks = np.arange(1, max_exp + 2, dtype=float)
    w = 1.0 / ranks
    w /= w.sum()
    exp = int(rng.choice(max_exp + 1, p=w))
    size = 2**exp
    if size >= 4 and rng.uniform() < other_size_prob:
        # Perturb off the power of two, as real workloads do.
        size = int(rng.integers(size // 2 + 1, size))
    return max(1, min(size, total_nodes))


def _hyperexponential_runtime(
    rng: np.random.Generator, size: int, mean_scale: float
) -> float:
    # Three stages: short debug runs, medium production runs, long runs.
    stage_probs = (0.45, 0.40, 0.15)
    stage_means = (4 * MINUTE, 40 * MINUTE, 4 * HOUR)
    stage = int(rng.choice(3, p=stage_probs))
    # Mild positive size correlation: mean grows ~ size^0.25.
    mean = stage_means[stage] * mean_scale * (size**0.25)
    return float(rng.exponential(mean))


def feitelson_trace(
    *,
    n_jobs: int,
    total_nodes: int,
    offered_load: float = 0.6,
    seed: int | np.random.Generator = 0,
    repeat_alpha: float = 2.5,
    max_repeats: int = 30,
    other_size_prob: float = 0.2,
    rerun_jitter: float = 0.20,
    max_run_time_factor: tuple[float, float] = (1.5, 6.0),
    name: str = "feitelson",
) -> Trace:
    """Generate a Feitelson-model trace of ``n_jobs`` jobs.

    Deterministic in ``seed``.  ``offered_load`` spans the Poisson
    program arrivals so work / (capacity × span) hits the target.
    """
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    if not 0 < offered_load < 1.5:
        raise ValueError(f"offered_load out of range: {offered_load}")
    rng = rng_from_seed(seed)
    rng_prog, rng_size, rng_rt, rng_rep, rng_arr = spawn_rng(rng, count=5)

    # --- programs with repeated runs -----------------------------------
    runs: list[tuple[int, str, str, int, float]] = []  # (prog, user, app, size, rt)
    prog = 0
    while len(runs) < n_jobs:
        user = f"user{int(rng_prog.integers(0, max(n_jobs // 40, 8))):03d}"
        app = f"{user}_prog{prog}"
        size = _harmonic_size(rng_size, total_nodes, other_size_prob)
        base_rt = _hyperexponential_runtime(rng_rt, size, 1.0)
        repeats = min(int(rng_rep.zipf(repeat_alpha)), max_repeats)
        for _ in range(repeats):
            rt = base_rt * float(
                np.exp(rng_rt.normal(0.0, rerun_jitter))
            )
            runs.append((prog, user, app, size, max(rt, 15.0)))
            if len(runs) >= n_jobs:
                break
        prog += 1

    # --- arrivals --------------------------------------------------------
    total_work = sum(size * rt for _, _, _, size, rt in runs)
    span = total_work / (offered_load * total_nodes)
    # Program start times Poisson over the span; reruns follow the
    # previous run's submission by an exponential think time.
    by_prog: dict[int, list[int]] = {}
    for idx, (p, *_rest) in enumerate(runs):
        by_prog.setdefault(p, []).append(idx)
    submit = np.zeros(len(runs))
    n_programs = len(by_prog)
    prog_starts = np.sort(rng_arr.uniform(0.0, span, size=n_programs))
    for starts, (p, idxs) in zip(prog_starts, sorted(by_prog.items())):
        t = float(starts)
        for idx in idxs:
            submit[idx] = t
            _, _, _, _, rt = runs[idx]
            t += rt + float(rng_arr.exponential(rt * 0.5 + 5 * MINUTE))

    lo, hi = max_run_time_factor
    jobs = []
    for i, (p, user, app, size, rt) in enumerate(runs):
        factor = float(np.exp(rng_rep.uniform(math.log(lo), math.log(hi))))
        jobs.append(
            Job(
                job_id=i + 1,
                submit_time=float(submit[i]),
                run_time=rt,
                nodes=size,
                user=user,
                executable=app,
                max_run_time=max(rt * factor, rt),
            )
        )
    trace = Trace(jobs, total_nodes=total_nodes, name=name)
    trace.available_fields = frozenset({"u", "e", "n"})
    return trace
