"""Workload summaries — the numbers behind the paper's Table 1.

:func:`summarize` computes per-trace request count, machine size, mean run
time and offered load; :func:`offered_load` is the standard work-over-
capacity ratio taken over the submission span.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.timeutils import seconds_to_minutes
from repro.workloads.job import Trace

__all__ = ["TraceSummary", "summarize", "offered_load"]


@dataclass(frozen=True)
class TraceSummary:
    """One row of a Table 1-style workload characterization."""

    name: str
    total_nodes: int
    n_jobs: int
    mean_run_time_minutes: float
    median_run_time_minutes: float
    mean_nodes: float
    offered_load: float
    span_days: float
    n_users: int
    n_queues: int

    def as_row(self) -> dict[str, object]:
        return {
            "Workload": self.name,
            "Nodes": self.total_nodes,
            "Requests": self.n_jobs,
            "Mean Run Time (minutes)": round(self.mean_run_time_minutes, 2),
            "Offered Load": round(self.offered_load, 3),
        }


def offered_load(trace: Trace) -> float:
    """Total node-seconds of work over machine capacity across the span."""
    if len(trace) == 0 or trace.span <= 0:
        return 0.0
    work = sum(j.work for j in trace)
    return work / (trace.span * trace.total_nodes)


def summarize(trace: Trace) -> TraceSummary:
    """Characterize a trace (request counts, run-time stats, load)."""
    run_times = np.array([j.run_time for j in trace], dtype=float)
    nodes = np.array([j.nodes for j in trace], dtype=float)
    users = {j.user for j in trace if j.user is not None}
    queues = {j.queue for j in trace if j.queue is not None}
    return TraceSummary(
        name=trace.name,
        total_nodes=trace.total_nodes,
        n_jobs=len(trace),
        mean_run_time_minutes=(
            seconds_to_minutes(float(run_times.mean())) if len(trace) else 0.0
        ),
        median_run_time_minutes=(
            seconds_to_minutes(float(np.median(run_times))) if len(trace) else 0.0
        ),
        mean_nodes=float(nodes.mean()) if len(trace) else 0.0,
        offered_load=offered_load(trace),
        span_days=trace.span / 86400.0,
        n_users=len(users),
        n_queues=len(queues),
    )
