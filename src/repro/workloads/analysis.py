"""Workload analysis: the structural properties the predictors exploit.

The paper's whole premise is that workloads carry exploitable structure:
similar jobs (same user/application) have similar run times, queues have
log-uniform-ish run-time distributions (Downey's model), and arrivals
are bursty.  This module quantifies those properties for any trace —
synthetic or real SWF — so a user can check whether a workload is the
kind these techniques work on.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict, deque
from dataclasses import dataclass

import numpy as np

from repro.predictors.downey import fit_log_uniform
from repro.workloads.job import Job, Trace

__all__ = [
    "RepetitionStats",
    "repetition_stats",
    "interarrival_stats",
    "InterarrivalStats",
    "node_histogram",
    "LogUniformFitQuality",
    "loguniform_fit_quality",
    "within_group_dispersion",
    "OverestimationStats",
    "overestimation_stats",
]


@dataclass(frozen=True)
class RepetitionStats:
    """How often a (user, application) identity recurs in a trace."""

    n_jobs: int
    n_identities: int
    repeat_fraction: float  # jobs whose identity appeared before
    recent_repeat_fraction: float  # ... within the previous `window` jobs
    window: int

    @property
    def mean_runs_per_identity(self) -> float:
        if self.n_identities == 0:
            return 0.0
        return self.n_jobs / self.n_identities


def _identity(job: Job) -> tuple:
    return (job.user, job.executable or job.script or job.queue)


def repetition_stats(trace: Trace, *, window: int = 100) -> RepetitionStats:
    """Fraction of jobs repeating an earlier (user, application) identity.

    ``recent_repeat_fraction`` restricts "earlier" to the previous
    ``window`` submissions — the temporal locality that bounded-history
    categories rely on.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    seen: set[tuple] = set()
    recent: deque[tuple] = deque(maxlen=window)
    repeats = 0
    recent_repeats = 0
    for job in trace:
        ident = _identity(job)
        if ident in seen:
            repeats += 1
        if ident in recent:
            recent_repeats += 1
        seen.add(ident)
        recent.append(ident)
    n = len(trace)
    return RepetitionStats(
        n_jobs=n,
        n_identities=len(seen),
        repeat_fraction=repeats / n if n else 0.0,
        recent_repeat_fraction=recent_repeats / n if n else 0.0,
        window=window,
    )


@dataclass(frozen=True)
class InterarrivalStats:
    """Burstiness of the submission process."""

    mean: float
    cv: float  # coefficient of variation; > 1 means burstier than Poisson
    max_gap: float


def interarrival_stats(trace: Trace) -> InterarrivalStats:
    times = np.array([j.submit_time for j in trace], dtype=float)
    if times.size < 2:
        return InterarrivalStats(mean=0.0, cv=0.0, max_gap=0.0)
    gaps = np.diff(times)
    mean = float(gaps.mean())
    std = float(gaps.std())
    return InterarrivalStats(
        mean=mean,
        cv=std / mean if mean > 0 else 0.0,
        max_gap=float(gaps.max()),
    )


def node_histogram(trace: Trace) -> dict[int, int]:
    """Job counts by node request (sorted by node count)."""
    counter = Counter(j.nodes for j in trace)
    return dict(sorted(counter.items()))


@dataclass(frozen=True)
class LogUniformFitQuality:
    """How well Downey's F(t) = b0 + b1 ln t fits one category's CDF."""

    category: str
    n: int
    r_squared: float
    t_max: float | None


def loguniform_fit_quality(
    trace: Trace, *, min_points: int = 10
) -> list[LogUniformFitQuality]:
    """Per-queue (or global) R² of the log-uniform run-time model."""
    groups: dict[str, list[float]] = defaultdict(list)
    for job in trace:
        groups[job.queue if job.queue is not None else "()"].append(job.run_time)
    out: list[LogUniformFitQuality] = []
    for name, run_times in sorted(groups.items()):
        if len(run_times) < min_points:
            continue
        fit = fit_log_uniform(run_times)
        if fit is None:
            out.append(
                LogUniformFitQuality(category=name, n=len(run_times),
                                     r_squared=0.0, t_max=None)
            )
            continue
        ts = np.sort(np.asarray(run_times, dtype=float))
        x = np.log(np.clip(ts, 1e-9, None))
        f = (np.arange(1, len(ts) + 1) - 0.5) / len(ts)
        pred = fit.beta0 + fit.beta1 * x
        ss_res = float(((f - pred) ** 2).sum())
        ss_tot = float(((f - f.mean()) ** 2).sum())
        r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
        out.append(
            LogUniformFitQuality(
                category=name, n=len(ts), r_squared=r2, t_max=fit.t_max
            )
        )
    return out


@dataclass(frozen=True)
class OverestimationStats:
    """How loose user-supplied maximum run times are.

    The paper's baseline predictor is exactly these maxima; their
    looseness (EASY-era studies found median overestimation factors of
    3-10x) is why historical prediction has room to win.
    """

    n_with_max: int
    median_factor: float
    mean_factor: float
    p90_factor: float
    exceed_fraction: float  # jobs that ran past their stated maximum


def overestimation_stats(trace: Trace) -> OverestimationStats:
    """Distribution of ``max_run_time / run_time`` over jobs that have both."""
    factors = []
    exceed = 0
    for job in trace:
        if job.max_run_time is None or job.run_time <= 0:
            continue
        factors.append(job.max_run_time / job.run_time)
        if job.run_time > job.max_run_time:
            exceed += 1
    if not factors:
        return OverestimationStats(
            n_with_max=0, median_factor=0.0, mean_factor=0.0,
            p90_factor=0.0, exceed_fraction=0.0,
        )
    arr = np.asarray(factors)
    return OverestimationStats(
        n_with_max=arr.size,
        median_factor=float(np.median(arr)),
        mean_factor=float(arr.mean()),
        p90_factor=float(np.percentile(arr, 90)),
        exceed_fraction=exceed / arr.size,
    )


def within_group_dispersion(trace: Trace) -> float:
    """Ratio of within-identity to overall log-run-time spread, in [0, ~1].

    Small values mean "knowing who submitted the job pins down its run
    time" — the regime where historical prediction wins.  Identities
    with fewer than 3 runs are ignored.
    """
    groups: dict[tuple, list[float]] = defaultdict(list)
    for job in trace:
        if job.run_time > 0:
            groups[_identity(job)].append(math.log(job.run_time))
    all_logs = [v for vs in groups.values() for v in vs]
    if len(all_logs) < 2:
        return 0.0
    overall = float(np.std(all_logs))
    if overall == 0.0:
        return 0.0
    within = [float(np.std(vs)) for vs in groups.values() if len(vs) >= 3]
    if not within:
        return 1.0
    return float(np.mean(within)) / overall
