"""Workload substrate: job records, trace containers, SWF I/O, generators.

Modules
-------
- :mod:`repro.workloads.job` — the :class:`Job` record and :class:`Trace`
  container used everywhere else;
- :mod:`repro.workloads.fields` — the characteristic catalogue of the
  paper's Table 2 (which trace records which job attributes);
- :mod:`repro.workloads.swf` — Standard Workload Format reader/writer so
  real Parallel Workloads Archive traces can be used directly;
- :mod:`repro.workloads.synthetic` — seeded synthetic trace generator
  with user populations, per-application run-time families, diurnal
  arrivals and max-run-time overestimation;
- :mod:`repro.workloads.archive` — the four paper workloads (ANL, CTC,
  SDSC95, SDSC96) as calibrated synthetic specifications;
- :mod:`repro.workloads.transform` — trace transformations (interarrival
  compression, truncation, filtering);
- :mod:`repro.workloads.stats` — Table 1-style summaries and offered load.
"""

from repro.workloads.job import Job, Trace
from repro.workloads.fields import Characteristic, FieldCatalog, WORKLOAD_FIELDS
from repro.workloads.synthetic import SyntheticWorkloadSpec, generate_trace
from repro.workloads.archive import (
    ANL,
    CTC,
    SDSC95,
    SDSC96,
    PAPER_WORKLOADS,
    load_paper_workload,
)
from repro.workloads.transform import (
    compress_interarrival,
    head,
    filter_jobs,
    merge,
    shift,
)
from repro.workloads.stats import TraceSummary, summarize
from repro.workloads.feitelson import feitelson_trace

__all__ = [
    "Job",
    "Trace",
    "Characteristic",
    "FieldCatalog",
    "WORKLOAD_FIELDS",
    "SyntheticWorkloadSpec",
    "generate_trace",
    "ANL",
    "CTC",
    "SDSC95",
    "SDSC96",
    "PAPER_WORKLOADS",
    "load_paper_workload",
    "compress_interarrival",
    "head",
    "filter_jobs",
    "merge",
    "shift",
    "TraceSummary",
    "summarize",
    "feitelson_trace",
]
