"""The four paper workloads as calibrated synthetic specifications.

Table 1 of the paper gives, for each trace, the machine, node count, number
of requests and mean run time; Table 2 gives the recorded characteristics;
Tables 10-15 pin down the offered load through the utilizations the
simulations reach.  The specs below encode all of that:

========  ===========  =====  ========  ==============  ============
Workload  System       Nodes  Requests  Mean run (min)  Target load
========  ===========  =====  ========  ==============  ============
ANL       IBM SP2       80*    7,994      97.75          ~0.72
CTC       IBM SP2       512   13,217     171.14          ~0.52
SDSC95    Paragon       400   22,885     108.21          ~0.42
SDSC96    Paragon       400   22,337     166.98          ~0.47
========  ===========  =====  ========  ==============  ============

(*) The ANL trace lost a third of its requests when recorded, so the paper
simulates an 80-node machine instead of the physical 120; we generate the
trace directly against 80 nodes.
"""

from __future__ import annotations

from repro.utils.timeutils import HOUR, MINUTE
from repro.workloads.job import Trace
from repro.workloads.fields import WORKLOAD_FIELDS
from repro.workloads.synthetic import (
    SyntheticWorkloadSpec,
    generate_trace,
    make_paragon_queues,
)

__all__ = ["ANL", "CTC", "SDSC95", "SDSC96", "PAPER_WORKLOADS", "load_paper_workload"]


ANL = SyntheticWorkloadSpec(
    name="ANL",
    total_nodes=80,
    n_jobs=7994,
    mean_run_time=97.75 * MINUTE,
    offered_load=0.72,
    n_users=90,
    job_types=("batch", "interactive"),
    interactive_type="interactive",
    interactive_fraction=0.25,
    has_executable=True,
    has_arguments=True,
    has_max_run_time=True,
    machine_time_limit=12 * HOUR,
)

CTC = SyntheticWorkloadSpec(
    name="CTC",
    total_nodes=512,
    n_jobs=13217,
    mean_run_time=171.14 * MINUTE,
    offered_load=0.52,
    n_users=180,
    job_types=("serial", "parallel", "pvm3"),
    job_classes=("DSI", "PIOFS"),
    network_adaptors=("css0", "en0"),
    has_script=True,
    has_max_run_time=True,
    machine_time_limit=18 * HOUR,
)

SDSC95 = SyntheticWorkloadSpec(
    name="SDSC95",
    total_nodes=400,
    n_jobs=22885,
    mean_run_time=108.21 * MINUTE,
    offered_load=0.42,
    n_users=200,
    queues=make_paragon_queues(400),
    has_max_run_time=False,
    machine_time_limit=12 * HOUR,
)

SDSC96 = SyntheticWorkloadSpec(
    name="SDSC96",
    total_nodes=400,
    n_jobs=22337,
    mean_run_time=166.98 * MINUTE,
    offered_load=0.47,
    n_users=210,
    queues=make_paragon_queues(400),
    has_max_run_time=False,
    machine_time_limit=12 * HOUR,
)

#: The four paper workloads keyed by name, in the paper's order.
PAPER_WORKLOADS: dict[str, SyntheticWorkloadSpec] = {
    "ANL": ANL,
    "CTC": CTC,
    "SDSC95": SDSC95,
    "SDSC96": SDSC96,
}

# Distinct seeds so SDSC95/SDSC96 (identical machines) differ as the two
# recording years did.
_WORKLOAD_SEEDS = {"ANL": 11, "CTC": 23, "SDSC95": 37, "SDSC96": 53}


def load_paper_workload(
    name: str, *, n_jobs: int | None = None, seed: int | None = None
) -> Trace:
    """Generate the named paper workload (optionally scaled to ``n_jobs``).

    The trace's ``available_fields`` is stamped from Table 2 so predictors
    can restrict their templates to characteristics the trace records.
    """
    if name not in PAPER_WORKLOADS:
        raise KeyError(
            f"unknown workload {name!r}; expected one of {sorted(PAPER_WORKLOADS)}"
        )
    spec = PAPER_WORKLOADS[name]
    trace = generate_trace(
        spec, seed=seed if seed is not None else _WORKLOAD_SEEDS[name], n_jobs=n_jobs
    )
    trace.available_fields = WORKLOAD_FIELDS[name].available
    # The regeneration recipe: this exact call reproduces the trace
    # bit-for-bit, which is how parallel table workers rebuild their
    # cell's trace instead of pickling it across the process boundary.
    trace.provenance = {
        "workload": name,
        "n_jobs": n_jobs,
        "seed": seed,
        "compress": 1.0,
    }
    return trace
