"""Standard Workload Format (SWF) reader and writer.

The Parallel Workloads Archive distributes the traces the paper used (ANL
SP2, CTC SP2, SDSC Paragon 95/96) in SWF: one job per line with 18
whitespace-separated fields, and ``;``-prefixed header comments carrying
metadata such as ``MaxNodes``.  This module converts between SWF and
:class:`repro.workloads.job.Trace` so that a user with the real archive
files can run every experiment on the genuine traces instead of our
synthetic stand-ins.

SWF field reference (1-based, as in the archive documentation):

 1 job number          7 used memory        13 group id
 2 submit time         8 requested procs    14 executable number
 3 wait time           9 requested time     15 queue number
 4 run time           10 requested memory   16 partition number
 5 allocated procs    11 status             17 preceding job number
 6 avg cpu time       12 user id            18 think time

Missing values are ``-1``.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, TextIO

from repro.workloads.job import Job, Trace

__all__ = ["read_swf", "write_swf", "parse_swf_lines", "job_to_swf_line"]

_NUM_FIELDS = 18


def parse_swf_lines(
    lines: Iterable[str], *, name: str = "swf", default_nodes: int | None = None
) -> Trace:
    """Parse an iterable of SWF lines into a :class:`Trace`.

    Header comments are scanned for ``MaxNodes``/``MaxProcs`` to size the
    machine; ``default_nodes`` is used when neither is present (an error
    if also absent).  Jobs with non-positive run time or processor count
    (cancelled entries) are skipped, matching common simulator practice.
    """
    max_nodes: int | None = None
    jobs: list[Job] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(";"):
            header = line.lstrip("; \t")
            for key in ("MaxNodes:", "MaxProcs:"):
                if header.startswith(key):
                    try:
                        candidate = int(header[len(key):].strip().split()[0])
                    except (ValueError, IndexError):
                        continue
                    # Prefer MaxNodes; fall back to MaxProcs.
                    if key == "MaxNodes:" or max_nodes is None:
                        max_nodes = candidate
            continue
        parts = line.split()
        if len(parts) != _NUM_FIELDS:
            raise ValueError(
                f"SWF line {lineno}: expected {_NUM_FIELDS} fields, got {len(parts)}"
            )
        f = [float(p) for p in parts]
        job_id = int(f[0])
        submit = f[1]
        run_time = f[3]
        procs = int(f[7]) if f[7] > 0 else int(f[4])
        if run_time <= 0 or procs <= 0:
            continue
        requested_time = f[8] if f[8] > 0 else None
        user = f"user{int(f[11])}" if f[11] >= 0 else None
        executable = f"app{int(f[13])}" if f[13] >= 0 else None
        queue = f"queue{int(f[14])}" if f[14] >= 0 else None
        partition = f"class{int(f[15])}" if f[15] >= 0 else None
        jobs.append(
            Job(
                job_id=job_id,
                submit_time=max(submit, 0.0),
                run_time=run_time,
                nodes=procs,
                user=user,
                executable=executable,
                queue=queue,
                job_class=partition,
                max_run_time=requested_time,
            )
        )
    if max_nodes is None:
        if default_nodes is None:
            max_nodes = max((j.nodes for j in jobs), default=1)
        else:
            max_nodes = default_nodes
    return Trace(jobs, total_nodes=max_nodes, name=name)


def read_swf(path: str | Path, *, name: str | None = None) -> Trace:
    """Read an SWF file from ``path``."""
    p = Path(path)
    with p.open("r", encoding="utf-8", errors="replace") as fh:
        return parse_swf_lines(fh, name=name or p.stem)


def job_to_swf_line(job: Job, *, wait_time: float = -1.0) -> str:
    """Render one job as an SWF record line."""

    def num(x: object, default: str = "-1") -> str:
        if x is None:
            return default
        return str(x)

    def ident(value: str | None, prefix: str) -> str:
        if value is None:
            return "-1"
        if value.startswith(prefix):
            suffix = value[len(prefix):]
            if suffix.isdigit():
                return suffix
        # Stable non-negative hash for arbitrary identifier strings.
        return str(abs(hash(value)) % 10**8)

    fields = [
        str(job.job_id),
        f"{job.submit_time:.0f}",
        f"{wait_time:.0f}",
        f"{job.run_time:.0f}",
        str(job.nodes),
        "-1",  # avg cpu time
        "-1",  # used memory
        str(job.nodes),
        num(f"{job.max_run_time:.0f}" if job.max_run_time is not None else None),
        "-1",  # requested memory
        "1",  # status: completed
        ident(job.user, "user"),
        "-1",  # group
        ident(job.executable, "app"),
        ident(job.queue, "queue"),
        ident(job.job_class, "class"),
        "-1",  # preceding job
        "-1",  # think time
    ]
    return " ".join(fields)


def write_swf(trace: Trace, path_or_file: str | Path | TextIO) -> None:
    """Write a trace as an SWF file (with a minimal header)."""
    own = not isinstance(path_or_file, io.TextIOBase) and not hasattr(
        path_or_file, "write"
    )
    fh: TextIO
    if own:
        fh = Path(path_or_file).open("w", encoding="utf-8")  # type: ignore[arg-type]
    else:
        fh = path_or_file  # type: ignore[assignment]
    try:
        fh.write(f"; Workload: {trace.name}\n")
        fh.write(f"; MaxNodes: {trace.total_nodes}\n")
        fh.write(f"; MaxRecords: {len(trace)}\n")
        for job in trace:
            fh.write(job_to_swf_line(job) + "\n")
    finally:
        if own:
            fh.close()
