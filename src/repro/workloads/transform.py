"""Trace transformations.

The paper's Section 4 experiment compresses the interarrival times of the
two SDSC workloads by a factor of two to raise the offered load and test
whether the Smith predictor's advantage grows when scheduling becomes
"hard".  :func:`compress_interarrival` implements that transformation;
:func:`head` and :func:`filter_jobs` are the obvious companions used by
tests and scaled-down benchmark runs.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.workloads.job import Job, Trace

__all__ = ["compress_interarrival", "head", "filter_jobs", "shift", "merge"]


def compress_interarrival(trace: Trace, factor: float, *, name: str | None = None) -> Trace:
    """Divide all interarrival gaps by ``factor`` (>1 raises offered load).

    Submission times are rescaled about the first submission:
    ``t' = t0 + (t - t0) / factor``.  Run times and node counts are
    untouched, so total work is preserved while the submission span
    shrinks by ``factor``.
    """
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    if len(trace) == 0:
        return trace
    t0 = trace[0].submit_time
    out = trace.map(
        lambda j: j.with_(submit_time=t0 + (j.submit_time - t0) / factor),
        name=name or f"{trace.name}x{factor:g}",
    )
    # The variant keeps the source's workload identity: lookups keyed by
    # workload (tuned templates, paper references) must not parse the
    # display name, which may itself contain an "x".
    out.base_name = trace.base_name
    out.scale = trace.scale * factor
    if trace.provenance is not None:
        out.provenance = dict(
            trace.provenance,
            compress=trace.provenance.get("compress", 1.0) * factor,
        )
    return out


def head(trace: Trace, n: int, *, name: str | None = None) -> Trace:
    """The first ``n`` jobs of the trace (by submission order)."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return Trace(
        list(trace)[:n],
        total_nodes=trace.total_nodes,
        name=name or trace.name,
        available_fields=trace.available_fields,
    )


def filter_jobs(
    trace: Trace, pred: Callable[[Job], bool], *, name: str | None = None
) -> Trace:
    """Keep only jobs satisfying ``pred``."""
    return trace.filter(pred, name=name)


def shift(trace: Trace, offset: float, *, name: str | None = None) -> Trace:
    """Shift all submission times by ``offset`` seconds (>= 0 result)."""
    if len(trace) and trace[0].submit_time + offset < 0:
        raise ValueError(
            f"offset {offset} would make the first submission negative"
        )
    return trace.map(
        lambda j: j.with_(submit_time=j.submit_time + offset),
        name=name or trace.name,
    )


def merge(
    traces: Sequence[Trace],
    *,
    total_nodes: int | None = None,
    name: str = "merged",
) -> Trace:
    """Interleave several traces into one arrival stream.

    Job ids are renumbered (per-trace offsets) to stay unique; user and
    application identities are prefixed with the source trace's name so
    similarity never leaks across sources.  ``total_nodes`` defaults to
    the maximum of the inputs (the merged stream is usually fed to a
    broker, not a single machine).
    """
    if not traces:
        raise ValueError("merge requires at least one trace")
    machine = total_nodes if total_nodes is not None else max(
        t.total_nodes for t in traces
    )
    jobs: list[Job] = []
    offset = 0
    for t in traces:
        prefix = t.name
        max_id = 0
        for j in t:
            max_id = max(max_id, j.job_id)
            jobs.append(
                j.with_(
                    job_id=j.job_id + offset,
                    user=f"{prefix}:{j.user}" if j.user is not None else None,
                    executable=(
                        f"{prefix}:{j.executable}"
                        if j.executable is not None
                        else None
                    ),
                )
            )
        offset += max_id
    return Trace(jobs, total_nodes=machine, name=name)
