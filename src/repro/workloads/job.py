"""Job records and trace containers.

A :class:`Job` carries everything the paper's Table 2 lists for any of the
four traces: identity characteristics (type, queue, class, user, script,
executable, arguments, network adaptor), the requested number of nodes,
the user-supplied maximum run time, and the ground-truth submit/run times
from the trace.  Characteristics that a particular trace does not record
are simply ``None`` — the predictors only template over fields the
workload declares available (see :mod:`repro.workloads.fields`).

Times are floats in **seconds** from the trace epoch; run times are
durations in seconds.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Iterator, Sequence

__all__ = ["Job", "Trace", "split_scaled_name"]

#: Scale suffixes produced by :func:`repro.workloads.transform.
#: compress_interarrival` — "SDSC95x2", "CTCx1.5".  The suffix must be a
#: plain decimal number; anything else is part of the base name.
_SCALE_SUFFIX = re.compile(r"^\d+(\.\d+)?$")


def split_scaled_name(name: str) -> tuple[str, float]:
    """Split a possibly scale-suffixed trace name into (base, factor).

    ``"SDSC95x2"`` → ``("SDSC95", 2.0)``; a name whose last ``"x"`` is
    not followed by a plain decimal number — ``"xenon"``, ``"proxy"``,
    ``"matrix"`` — is returned unchanged with factor 1.0.  Prefer the
    explicit :attr:`Trace.base_name` / :attr:`Trace.scale` attributes;
    this parser is only the fallback for hand-assembled names.
    """
    base, sep, suffix = name.rpartition("x")
    if sep and base and _SCALE_SUFFIX.match(suffix):
        return base, float(suffix)
    return name, 1.0


@dataclass(frozen=True)
class Job:
    """One request to run an application on the machine."""

    job_id: int
    submit_time: float
    run_time: float
    nodes: int
    user: str | None = None
    job_type: str | None = None
    queue: str | None = None
    job_class: str | None = None
    script: str | None = None
    executable: str | None = None
    arguments: str | None = None
    network_adaptor: str | None = None
    max_run_time: float | None = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"job {self.job_id}: nodes must be >= 1, got {self.nodes}")
        if self.run_time < 0:
            raise ValueError(f"job {self.job_id}: run_time must be >= 0, got {self.run_time}")
        if self.submit_time < 0:
            raise ValueError(
                f"job {self.job_id}: submit_time must be >= 0, got {self.submit_time}"
            )
        if self.max_run_time is not None and self.max_run_time <= 0:
            raise ValueError(
                f"job {self.job_id}: max_run_time must be > 0, got {self.max_run_time}"
            )

    @property
    def work(self) -> float:
        """Node-seconds actually consumed (nodes × run time)."""
        return self.nodes * self.run_time

    def with_(self, **changes) -> "Job":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


class Trace:
    """An ordered collection of jobs plus workload metadata.

    Jobs are kept sorted by ``(submit_time, job_id)``; the constructor
    sorts defensively so generators and parsers need not.
    ``total_nodes`` is the size of the machine the trace was recorded on
    (after any correction — the paper shrinks ANL from 120 to 80 nodes to
    compensate for the missing third of its trace).

    ``base_name``/``scale`` identify the underlying workload when the
    trace is a transformed variant ("SDSC95x2" → base "SDSC95", scale 2):
    generators and :func:`repro.workloads.transform.compress_interarrival`
    stamp them explicitly, and lookups keyed by workload (tuned template
    sets, paper references) should use ``base_name`` rather than parsing
    the display name.  When not given they are derived from ``name`` via
    :func:`split_scaled_name`.  ``provenance``, when set by
    :func:`repro.workloads.archive.load_paper_workload`, records the
    ``(workload, n_jobs, seed, compress)`` recipe that regenerates the
    trace bit-for-bit — content-changing transforms drop it.
    """

    def __init__(
        self,
        jobs: Iterable[Job],
        *,
        total_nodes: int,
        name: str = "trace",
        available_fields: frozenset[str] | None = None,
        base_name: str | None = None,
        scale: float | None = None,
    ) -> None:
        if total_nodes < 1:
            raise ValueError(f"total_nodes must be >= 1, got {total_nodes}")
        self._jobs: list[Job] = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        seen: set[int] = set()
        for j in self._jobs:
            if j.job_id in seen:
                raise ValueError(f"duplicate job_id {j.job_id} in trace")
            seen.add(j.job_id)
            if j.nodes > total_nodes:
                raise ValueError(
                    f"job {j.job_id} requests {j.nodes} nodes on a "
                    f"{total_nodes}-node machine"
                )
        self.total_nodes = total_nodes
        self.name = name
        self.available_fields = available_fields
        if base_name is None or scale is None:
            parsed_base, parsed_scale = split_scaled_name(name)
            base_name = base_name if base_name is not None else parsed_base
            scale = scale if scale is not None else parsed_scale
        self.base_name = base_name
        self.scale = scale
        self.provenance: dict | None = None

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __getitem__(self, idx: int) -> Job:
        return self._jobs[idx]

    @property
    def jobs(self) -> Sequence[Job]:
        return tuple(self._jobs)

    @property
    def span(self) -> float:
        """Time from first submission to last completion if run unqueued.

        A lower bound on the makespan of any non-clairvoyant schedule;
        used by :func:`repro.workloads.stats.offered_load`.
        """
        if not self._jobs:
            return 0.0
        first = self._jobs[0].submit_time
        last = max(j.submit_time + j.run_time for j in self._jobs)
        return last - first

    def map(self, fn: Callable[[Job], Job], *, name: str | None = None) -> "Trace":
        """Return a new trace with ``fn`` applied to every job."""
        return Trace(
            (fn(j) for j in self._jobs),
            total_nodes=self.total_nodes,
            name=name or self.name,
            available_fields=self.available_fields,
            base_name=self.base_name if name is None else None,
            scale=self.scale if name is None else None,
        )

    def filter(self, pred: Callable[[Job], bool], *, name: str | None = None) -> "Trace":
        """Return a new trace keeping only jobs for which ``pred`` is true."""
        return Trace(
            (j for j in self._jobs if pred(j)),
            total_nodes=self.total_nodes,
            name=name or self.name,
            available_fields=self.available_fields,
            base_name=self.base_name if name is None else None,
            scale=self.scale if name is None else None,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Trace(name={self.name!r}, jobs={len(self._jobs)}, "
            f"total_nodes={self.total_nodes})"
        )
