"""The characteristic catalogue of the paper's Table 2.

Each trace records a different subset of job attributes, and templates may
only use characteristics the trace actually records.  This module names
the characteristics with the paper's abbreviations, maps them onto
:class:`repro.workloads.job.Job` attributes, and declares which are
available in each of the four paper workloads (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.workloads.job import Job

__all__ = [
    "Characteristic",
    "CHARACTERISTICS",
    "TEMPLATE_CHARACTERISTICS",
    "FieldCatalog",
    "WORKLOAD_FIELDS",
]


@dataclass(frozen=True)
class Characteristic:
    """One job attribute usable inside a similarity template."""

    abbr: str
    name: str
    getter: Callable[[Job], object]


def _attr(attr: str) -> Callable[[Job], object]:
    def get(job: Job) -> object:
        return getattr(job, attr)

    return get


# Order follows Table 2 of the paper.  "n" (number of nodes) is handled
# specially by templates via node-range binning, but is listed here so the
# catalogue is complete.
CHARACTERISTICS: dict[str, Characteristic] = {
    "t": Characteristic("t", "type", _attr("job_type")),
    "q": Characteristic("q", "queue", _attr("queue")),
    "c": Characteristic("c", "class", _attr("job_class")),
    "u": Characteristic("u", "user", _attr("user")),
    "s": Characteristic("s", "loadleveler script", _attr("script")),
    "e": Characteristic("e", "executable", _attr("executable")),
    "a": Characteristic("a", "arguments", _attr("arguments")),
    "na": Characteristic("na", "network adaptor", _attr("network_adaptor")),
    "n": Characteristic("n", "number of nodes", _attr("nodes")),
}

#: Characteristics eligible as categorical template components (1-8 of
#: Table 2; node count is continuous and handled by node-range binning).
TEMPLATE_CHARACTERISTICS: tuple[str, ...] = ("t", "q", "c", "u", "s", "e", "a", "na")


@dataclass(frozen=True)
class FieldCatalog:
    """The set of characteristics one workload records (one Table 2 column)."""

    workload: str
    available: frozenset[str]
    has_max_run_time: bool

    def categorical(self) -> tuple[str, ...]:
        """Available categorical characteristics, in Table 2 order."""
        return tuple(c for c in TEMPLATE_CHARACTERISTICS if c in self.available)

    def __contains__(self, abbr: str) -> bool:
        return abbr in self.available


#: Table 2 of the paper: which characteristics each trace records.
WORKLOAD_FIELDS: dict[str, FieldCatalog] = {
    "ANL": FieldCatalog(
        "ANL",
        frozenset({"t", "u", "e", "a", "n"}),
        has_max_run_time=True,
    ),
    "CTC": FieldCatalog(
        "CTC",
        frozenset({"t", "c", "u", "s", "na", "n"}),
        has_max_run_time=True,
    ),
    "SDSC95": FieldCatalog(
        "SDSC95",
        frozenset({"q", "u", "n"}),
        has_max_run_time=False,
    ),
    "SDSC96": FieldCatalog(
        "SDSC96",
        frozenset({"q", "u", "n"}),
        has_max_run_time=False,
    ),
}
