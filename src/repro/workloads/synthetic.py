"""Seeded synthetic workload generator.

The real ANL/CTC/SDSC accounting traces are not redistributable here, so
the reproduction generates synthetic traces with the *structural*
properties the paper's techniques exploit:

- a **user population** with Zipf-like activity (a few heavy users);
- per-user **application pools** — repeated runs of the same executable
  draw from a common lognormal run-time family, which is exactly the
  regularity history-based predictors (Smith, Gibbons) key on;
- **temporal locality**: users resubmit the same application in bursts;
- **power-of-two node requests** correlated with the application;
- loose, rounded **user-supplied maximum run times** (for the workloads
  that record them) — the paper's EASY-style baseline predictor;
- **queues** with node/time limits (for the SDSC-style workloads), which
  Downey's predictor categorizes on and from which per-queue maxima are
  derived;
- **diurnal arrivals** calibrated so the trace offers a target load.

Everything is driven by independent child streams of a single seed, so a
``(spec, seed, n_jobs)`` triple always produces the identical trace.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import rng_from_seed, spawn_rng
from repro.utils.timeutils import DAY, HOUR, MINUTE
from repro.workloads.job import Job, Trace

__all__ = [
    "QueueSpec",
    "SyntheticWorkloadSpec",
    "generate_trace",
    "make_paragon_queues",
]


@dataclass(frozen=True)
class QueueSpec:
    """A submission queue with node and wall-time limits."""

    name: str
    max_nodes: int
    max_run_time: float

    def admits(self, nodes: int, run_time: float) -> bool:
        return nodes <= self.max_nodes and run_time <= self.max_run_time


@dataclass(frozen=True)
class SyntheticWorkloadSpec:
    """Parameters of one synthetic workload.

    ``mean_run_time`` is the target trace-wide mean in seconds (Table 1 of
    the paper reports minutes); ``offered_load`` is total work divided by
    machine capacity over the submission span and is calibrated to the
    utilizations of Tables 10-15.
    """

    name: str
    total_nodes: int
    n_jobs: int
    mean_run_time: float
    offered_load: float
    n_users: int = 120
    mean_apps_per_user: float = 4.0
    runtime_sigma: float = 0.55
    app_spread_sigma: float = 1.1
    repeat_prob: float = 0.40
    recency_window: int = 64
    min_run_time: float = 30.0
    diurnal_amplitude: float = 0.85
    weekend_factor: float = 0.45
    job_types: tuple[str, ...] = ()
    interactive_type: str | None = None
    interactive_fraction: float = 0.0
    job_classes: tuple[str, ...] = ()
    network_adaptors: tuple[str, ...] = ()
    has_executable: bool = False
    has_arguments: bool = False
    has_script: bool = False
    has_user: bool = True
    has_max_run_time: bool = False
    max_overestimate_range: tuple[float, float] = (1.2, 8.0)
    max_round_to: float = 15 * MINUTE
    machine_time_limit: float = 24 * HOUR
    queues: tuple[QueueSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if not 0 < self.offered_load < 1.5:
            raise ValueError(f"offered_load out of range: {self.offered_load}")
        if self.mean_run_time <= 0:
            raise ValueError("mean_run_time must be positive")
        if not 0 <= self.repeat_prob < 1:
            raise ValueError("repeat_prob must be in [0, 1)")


@dataclass
class _App:
    """One application owned by one user: a run-time family plus shape."""

    name: str
    log_mu: float
    sigma: float
    preferred_nodes: int
    arguments: tuple[str, ...]
    job_class: str | None
    network_adaptor: str | None
    script: str | None


def make_paragon_queues(total_nodes: int) -> tuple[QueueSpec, ...]:
    """Queues in the style of the SDSC Paragon: node class × time class.

    Produces ~30 queues named like ``q16m`` (16-node class, medium time),
    matching the paper's description of 29-35 queues with per-queue
    resource limits.
    """
    queues: list[QueueSpec] = []
    node_class = 1
    while node_class <= total_nodes:
        for tag, limit in (("s", 1 * HOUR), ("m", 4 * HOUR), ("l", 12 * HOUR)):
            queues.append(QueueSpec(f"q{node_class}{tag}", node_class, limit))
        node_class *= 2
        if node_class > total_nodes and node_class // 2 < total_nodes:
            node_class = total_nodes
    return tuple(queues)


def _zipf_weights(n: int, s: float, rng: np.random.Generator) -> np.ndarray:
    """Zipf-like popularity weights over ``n`` items, randomly permuted."""
    ranks = np.arange(1, n + 1, dtype=float)
    w = ranks**-s
    rng.shuffle(w)
    return w / w.sum()


def _power_of_two_nodes(rng: np.random.Generator, total_nodes: int) -> int:
    """A power-of-two node request biased toward small jobs.

    The bias steepens in the top quarter of the machine: requests for
    half the machine or more exist but are rare, as in the archive
    traces — otherwise FCFS head-of-line blocking dominates every
    simulation instead of being the moderate penalty the paper reports.
    """
    max_exp = int(math.floor(math.log2(total_nodes)))
    exps = np.arange(0, max_exp + 1)
    w = 0.75**exps
    # Extra damping for jobs needing >= half the machine.
    w[2 ** exps >= total_nodes // 2] *= 0.35
    w /= w.sum()
    return int(2 ** rng.choice(exps, p=w))


def _build_apps(
    spec: SyntheticWorkloadSpec, user: str, rng: np.random.Generator
) -> list[_App]:
    count = 1 + rng.geometric(1.0 / spec.mean_apps_per_user)
    apps: list[_App] = []
    base_mu = math.log(spec.mean_run_time) - 0.5 * spec.runtime_sigma**2
    for i in range(count):
        log_mu = rng.normal(base_mu, spec.app_spread_sigma)
        args: tuple[str, ...] = ()
        if spec.has_arguments:
            args = tuple(
                f"-in data{rng.integers(0, 5)} -iter {int(2 ** rng.integers(4, 10))}"
                for _ in range(int(rng.integers(1, 4)))
            )
        apps.append(
            _App(
                name=f"{user}_app{i}",
                log_mu=log_mu,
                sigma=spec.runtime_sigma * float(rng.uniform(0.6, 1.4)),
                preferred_nodes=_power_of_two_nodes(rng, spec.total_nodes),
                arguments=args,
                job_class=(
                    str(rng.choice(spec.job_classes)) if spec.job_classes else None
                ),
                network_adaptor=(
                    str(rng.choice(spec.network_adaptors))
                    if spec.network_adaptors
                    else None
                ),
                script=f"{user}_job{i}.ll" if spec.has_script else None,
            )
        )
    return apps


def _diurnal_arrivals(
    n: int,
    span: float,
    amplitude: float,
    weekend_factor: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """``n`` sorted arrival times over [0, span] with daily/weekly cycles.

    Intensity is ``(1 + A·sin(2πt/DAY)) · w(t)`` with ``w`` the weekend
    damping; arrivals are drawn by inverse transform on the cumulative
    intensity evaluated on a fine grid.  Deep overnight/weekend lulls let
    the queue drain periodically, as the real traces do — without them
    work-ordered policies starve wide jobs indefinitely.
    """
    if span <= 0:
        return np.zeros(n)
    grid = np.linspace(0.0, span, max(2048, int(span / (10 * MINUTE)) + 1))
    intensity = 1.0 + amplitude * np.sin(2.0 * math.pi * grid / DAY)
    day_index = np.floor(grid / DAY).astype(int) % 7
    weekend = (day_index == 5) | (day_index == 6)
    intensity = np.where(weekend, intensity * weekend_factor, intensity)
    cum = np.concatenate([[0.0], np.cumsum((intensity[1:] + intensity[:-1]) / 2.0)])
    cum /= cum[-1]
    u = np.sort(rng.uniform(0.0, 1.0, size=n))
    return np.interp(u, cum, grid)


def _round_up(value: float, granularity: float) -> float:
    return math.ceil(value / granularity) * granularity


def generate_trace(
    spec: SyntheticWorkloadSpec,
    *,
    seed: int | np.random.Generator = 0,
    n_jobs: int | None = None,
) -> Trace:
    """Generate a deterministic synthetic trace for ``spec``.

    ``n_jobs`` overrides ``spec.n_jobs`` (used by scaled-down benchmark
    runs); all structural parameters are kept, and the arrival span is
    re-derived so the offered load is preserved at any size.
    """
    n = int(n_jobs if n_jobs is not None else spec.n_jobs)
    if n < 1:
        raise ValueError("n_jobs must be >= 1")
    rng = rng_from_seed(seed)
    (
        rng_users,
        rng_apps,
        rng_seq,
        rng_rt,
        rng_nodes,
        rng_max,
        rng_arrive,
        rng_type,
    ) = spawn_rng(rng, count=8)

    users = [f"user{i:03d}" for i in range(spec.n_users)]
    user_weights = _zipf_weights(spec.n_users, 1.1, rng_users)
    apps_by_user: dict[str, list[_App]] = {
        u: _build_apps(spec, u, rng_apps) for u in users
    }

    # --- choose (user, app, type) for each job with temporal locality ----
    chosen: list[tuple[str, _App, str | None]] = []
    # maxlen eviction == the old append-then-pop(0) trim, and the RNG
    # draws only consult len(recent), so the job stream is unchanged.
    recent: deque[tuple[str, _App]] = deque(maxlen=spec.recency_window)
    user_idx = rng_seq.choice(spec.n_users, size=n, p=user_weights)
    repeat_draw = rng_seq.uniform(size=n)
    for i in range(n):
        if recent and repeat_draw[i] < spec.repeat_prob:
            u, app = recent[int(rng_seq.integers(0, len(recent)))]
        else:
            u = users[int(user_idx[i])]
            pool = apps_by_user[u]
            app = pool[int(rng_seq.integers(0, len(pool)))]
        recent.append((u, app))
        jtype: str | None = None
        if spec.job_types:
            if (
                spec.interactive_type is not None
                and rng_type.uniform() < spec.interactive_fraction
            ):
                jtype = spec.interactive_type
            else:
                others = [t for t in spec.job_types if t != spec.interactive_type]
                jtype = str(rng_type.choice(others)) if others else spec.job_types[0]
        chosen.append((u, app, jtype))

    # --- raw run times and node counts --------------------------------
    raw_rt = np.empty(n)
    nodes = np.empty(n, dtype=int)
    for i, (_, app, jtype) in enumerate(chosen):
        rt = float(rng_rt.lognormal(app.log_mu, app.sigma))
        nd = app.preferred_nodes
        # Users mostly rerun at the same width, occasionally halve or double.
        u = rng_nodes.uniform()
        if u < 0.15:
            nd = max(1, nd // 2)
        elif u > 0.92:
            nd = nd * 2
        nd = max(1, min(spec.total_nodes, nd))
        if jtype is not None and jtype == spec.interactive_type:
            rt *= 0.08  # interactive jobs are short
            nd = min(nd, max(1, spec.total_nodes // 16))
        raw_rt[i] = rt
        nodes[i] = nd

    # --- scale to the target mean run time, then clip ------------------
    scale = spec.mean_run_time / float(raw_rt.mean())
    run_times = np.clip(raw_rt * scale, spec.min_run_time, spec.machine_time_limit)

    # --- queue assignment (clips run time to the queue limit) ----------
    queue_names: list[str | None] = [None] * n
    if spec.queues:
        sorted_queues = sorted(spec.queues, key=lambda q: (q.max_nodes, q.max_run_time))
        for i in range(n):
            fitting = [q for q in sorted_queues if q.max_nodes >= nodes[i]]
            if not fitting:
                fitting = [max(sorted_queues, key=lambda q: q.max_nodes)]
                nodes[i] = min(nodes[i], fitting[0].max_nodes)
            # Prefer the tightest time class that admits the job; users
            # occasionally pick a looser queue than needed.
            admitting = [q for q in fitting if q.max_run_time >= run_times[i]]
            if admitting:
                q = admitting[0]
                if len(admitting) > 1 and rng_max.uniform() < 0.2:
                    q = admitting[int(rng_max.integers(1, len(admitting)))]
            else:
                q = max(fitting, key=lambda qq: qq.max_run_time)
                run_times[i] = min(run_times[i], q.max_run_time)
            queue_names[i] = q.name

    # --- user-supplied maximum run times --------------------------------
    max_rts: list[float | None] = [None] * n
    if spec.has_max_run_time:
        lo, hi = spec.max_overestimate_range
        for i in range(n):
            if rng_max.uniform() < 0.25:
                # Lazy user: request the machine limit.
                m = spec.machine_time_limit
            else:
                factor = float(np.exp(rng_max.uniform(math.log(lo), math.log(hi))))
                m = _round_up(run_times[i] * factor, spec.max_round_to)
            max_rts[i] = float(min(max(m, run_times[i]), spec.machine_time_limit))

    # --- arrivals calibrated to the offered load ------------------------
    total_work = float((run_times * nodes).sum())
    span = total_work / (spec.offered_load * spec.total_nodes)
    arrivals = _diurnal_arrivals(
        n, span, spec.diurnal_amplitude, spec.weekend_factor, rng_arrive
    )

    jobs = []
    for i, (u, app, jtype) in enumerate(chosen):
        jobs.append(
            Job(
                job_id=i + 1,
                submit_time=float(arrivals[i]),
                run_time=float(run_times[i]),
                nodes=int(nodes[i]),
                user=u if spec.has_user else None,
                job_type=jtype,
                queue=queue_names[i],
                job_class=app.job_class,
                script=app.script,
                executable=app.name if spec.has_executable else None,
                arguments=(
                    app.arguments[int(rng_seq.integers(0, len(app.arguments)))]
                    if spec.has_arguments and app.arguments
                    else None
                ),
                network_adaptor=app.network_adaptor,
                max_run_time=max_rts[i],
            )
        )
    return Trace(
        jobs,
        total_nodes=spec.total_nodes,
        name=spec.name,
        base_name=spec.name,
        scale=1.0,
    )
