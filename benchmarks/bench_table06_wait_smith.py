"""Table 6 — wait-time prediction using the Smith run-time predictor.

The headline comparison: historical template-based predictions cut
wait-time prediction error by 42-88% relative to user maxima (Table 5).
This bench runs both predictors on the same traces and asserts the
improvement on every workload.
"""

from __future__ import annotations

import numpy as np

from _common import cell_metrics, emit_bench_json, print_wait_table, run_once, wait_time_rows


def _run():
    smith = wait_time_rows("smith", ("fcfs", "lwf", "backfill"))
    mx = wait_time_rows("max", ("fcfs", "lwf", "backfill"))
    return smith, mx


def test_table06_wait_prediction_smith(benchmark):
    smith, mx = run_once(benchmark, _run)
    print_wait_table("smith", smith)
    emit_bench_json(
        {"table06": [c.as_row() for c in smith]}, metrics=cell_metrics(smith)
    )

    mx_by_key = {(c.workload, c.algorithm): c for c in mx}
    improvements = []
    for c in smith:
        ref = mx_by_key[(c.workload, c.algorithm)]
        if ref.mean_error_minutes > 0:
            improvements.append(
                1.0 - c.mean_error_minutes / ref.mean_error_minutes
            )
    # Paper: 42-88% better than max run times.  Require a clear aggregate
    # win and a win in the large majority of cells.
    assert np.mean(improvements) > 0.30
    assert np.mean([imp > 0 for imp in improvements]) >= 0.75
