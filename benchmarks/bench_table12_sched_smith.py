"""Table 12 — scheduling performance with the Smith predictor.

The §4 headline: feeding historical predictions into the schedulers
lowers mean waits relative to user maxima in most cells, with the
largest effect on the high-load workload's backfill.
"""

from __future__ import annotations

import numpy as np

from _common import cell_metrics, emit_bench_json, print_scheduling_table, run_once, scheduling_rows


def _run():
    return scheduling_rows("smith"), scheduling_rows("max")


def test_table12_scheduling_smith(benchmark):
    smith, mx = run_once(benchmark, _run)
    print_scheduling_table("smith", smith)
    emit_bench_json(
        {"table12": [c.as_row() for c in smith]}, metrics=cell_metrics(smith)
    )

    mx_by_key = {(c.workload, c.algorithm): c for c in mx}
    # Utilization invariance.
    for c in smith:
        ref = mx_by_key[(c.workload, c.algorithm)]
        assert abs(c.utilization_percent - ref.utilization_percent) < 6.0
    # The paper: accurate predictions matter most on the high-load
    # workload; elsewhere sub-minute waits make comparisons noise
    # ("no prediction technique clearly outperforms ... when the offered
    # load is low").  Claim the ANL shape strictly.
    smith_anl = {c.algorithm: c for c in smith if c.workload == "ANL"}
    mx_anl = {c.algorithm: c for c in mx if c.workload == "ANL"}
    # Backfill, the estimate-sensitive algorithm, improves clearly.
    assert (
        smith_anl["Backfill"].mean_wait_minutes
        < mx_anl["Backfill"].mean_wait_minutes
    )
    # LWF only needs big-vs-small: within 15% either way.
    assert smith_anl["LWF"].mean_wait_minutes <= 1.15 * mx_anl["LWF"].mean_wait_minutes
    # Aggregate across loaded backfill cells: Smith no worse than maxima.
    loaded_ratios = [
        c.mean_wait_minutes / mx_by_key[(c.workload, c.algorithm)].mean_wait_minutes
        for c in smith
        if c.algorithm == "Backfill"
        and mx_by_key[(c.workload, c.algorithm)].mean_wait_minutes > 5.0
    ]
    assert np.mean(loaded_ratios) < 1.0
