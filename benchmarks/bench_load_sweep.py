"""Load sweep — where prediction accuracy starts to matter.

The paper's §4 hypothesis: "greater prediction accuracy ... when
scheduling becomes hard" — tested there with one 2x compression of the
SDSC traces.  This sweep traces the whole curve: interarrival
compression factors 1x..3x on SDSC95, backfill scheduling, oracle vs
Smith vs user maxima.  Expected shape: all predictors tie at low load;
the max-run-time penalty and the oracle-Smith gap open as load rises.
"""

from __future__ import annotations

from repro.core.experiment import run_scheduling_experiment
from repro.core.tables import format_table
from repro.workloads.transform import compress_interarrival

from _common import bench_trace

FACTORS = (1.0, 1.5, 2.0, 3.0)
PREDICTORS = ("actual", "smith", "max")


def _run():
    base = bench_trace("SDSC95")
    rows = []
    for factor in FACTORS:
        trace = compress_interarrival(base, factor) if factor != 1.0 else base
        for predictor in PREDICTORS:
            cell, _ = run_scheduling_experiment(trace, "backfill", predictor)
            rows.append(
                {
                    "Compression": f"{factor:g}x",
                    "Predictor": predictor,
                    "Util %": round(cell.utilization_percent, 2),
                    "Mean wait (min)": round(cell.mean_wait_minutes, 2),
                }
            )
    return rows


def test_load_sweep(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Offered-load sweep (SDSC95, backfill)"))

    by = {(r["Compression"], r["Predictor"]): r for r in rows}
    # Utilization rises monotonically with compression (for the oracle).
    utils = [by[(f"{f:g}x", "actual")]["Util %"] for f in FACTORS]
    assert all(a < b + 1.0 for a, b in zip(utils, utils[1:]))
    # Waits explode with load for every predictor.
    for p in PREDICTORS:
        lo = by[("1x", p)]["Mean wait (min)"]
        hi = by[("3x", p)]["Mean wait (min)"]
        assert hi > lo
    # Assertions anchor at 2x — the paper's own "hard" point; 3x pushes
    # the offered load past 1, where the queue never drains and schedule
    # comparisons become chaotic (printed for the curve, not asserted).
    # At 2x, history-based predictions are clearly worth having: Smith
    # beats the max-run-time baseline.
    assert (
        by[("2x", "smith")]["Mean wait (min)"]
        < by[("2x", "max")]["Mean wait (min)"]
    )
    # The absolute Smith-vs-max gap grows from light to hard load.
    gap_lo = abs(
        by[("1x", "max")]["Mean wait (min)"] - by[("1x", "smith")]["Mean wait (min)"]
    )
    gap_hi = abs(
        by[("2x", "max")]["Mean wait (min)"] - by[("2x", "smith")]["Mean wait (min)"]
    )
    assert gap_hi >= gap_lo
