"""§4 text experiment — SDSC interarrival compression by 2×.

The paper compresses both SDSC workloads' interarrival gaps by a factor
of two (raising the offered load) to test the hypothesis that better
run-time predictions matter more when scheduling is "hard".  It finds
Smith's mean waits ~8% better on average than Gibbons'/Downey's in the
compressed regime.
"""

from __future__ import annotations

import numpy as np

from repro.core.experiment import run_scheduling_experiment
from repro.core.tables import format_table
from repro.workloads.transform import compress_interarrival

from _common import bench_trace


def _run():
    cells = []
    for name in ("SDSC95", "SDSC96"):
        trace = compress_interarrival(bench_trace(name), 2.0)
        for pred in ("actual", "max", "smith", "gibbons", "downey-average",
                     "downey-median"):
            for algo in ("lwf", "backfill"):
                cell, _ = run_scheduling_experiment(trace, algo, pred)
                cells.append(cell)
    return cells


def test_sdsc_compressed_interarrival(benchmark):
    cells = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        {
            "Workload": c.workload,
            "Algorithm": c.algorithm,
            "Predictor": c.predictor,
            "Util %": round(c.utilization_percent, 2),
            "Wait (min)": round(c.mean_wait_minutes, 2),
        }
        for c in cells
    ]
    print()
    print(format_table(rows, title="SDSC workloads, interarrival / 2 (§4)"))

    by = {(c.workload, c.algorithm, c.predictor): c for c in cells}
    # Offered load doubled: utilization must exceed the uncompressed
    # targets (~0.42/0.47) substantially.
    for c in cells:
        if c.predictor == "actual":
            assert c.utilization_percent > 55.0
    # Smith at least competitive with the rival predictors on average
    # (paper: ~8% better on average, with scatter either way).
    ratios = []
    for w in ("SDSC95x2", "SDSC96x2"):
        for algo in ("LWF", "Backfill"):
            smith = by[(w, algo, "smith")].mean_wait_minutes
            for rival in ("gibbons", "downey-average", "downey-median"):
                r = by[(w, algo, rival)].mean_wait_minutes
                if r > 0:
                    ratios.append(smith / r)
    assert np.mean(ratios) < 1.15
