"""Misprediction cost and online learning — the accuracy/schedule loop.

Two halves of one question the paper leaves implicit (and Mitzenmacher's
"price of misprediction" makes explicit): how much schedule quality does
run-time prediction error cost, and how much of that error can a
predictor that keeps learning online claw back?

1. The degradation curve: the run-time oracle wrapped in controlled
   log-normal error, replayed through Backfill and EASY at a ladder of
   error levels.  Level 0 is bit-identical to the plain oracle (asserted
   in tests/test_misprediction.py); here we assert the *shape* — injected
   error grows with level, and large error visibly degrades mean wait.

2. Adaptive predictors vs. Smith: the streaming online learners of
   repro.predictors.adaptive against the paper's Smith predictor and
   against a *frozen* Smith (warm-started on a prefix, history frozen —
   what deploying a trained-offline model looks like).  Online beats
   frozen nearly everywhere; the best online learner beats even the
   live Smith on at least one workload.
"""

from __future__ import annotations

from _common import (
    WORKLOAD_ORDER,
    bench_parallel,
    bench_trace,
    emit_bench_json,
    run_once,
)

from repro.core.registry import make_predictor
from repro.core.tables import format_table
from repro.experiments.misprediction import run_misprediction_campaign
from repro.predictors.base import Prediction, RuntimePredictor, warm_start
from repro.predictors.replay import replay_prediction_error
from repro.predictors.smith import SmithPredictor
from repro.predictors.templates import default_templates
from repro.workloads.job import Job

#: Error ladder for the degradation curve: the exact-oracle anchor plus
#: moderate and severe misprediction (sigma of the log-normal factor).
LEVELS = (0.0, 0.5, 1.0, 2.0)

ADAPTIVE = ("online-mean", "online-rls", "decayed-mean")


def test_misprediction_degradation_curve(benchmark):
    curves = run_once(
        benchmark,
        run_misprediction_campaign,
        workloads=[bench_trace("ANL")],
        algorithms=("backfill", "easy"),
        levels=LEVELS,
        max_workers=bench_parallel(),
    )
    rows = []
    for curve in curves:
        rows.extend(curve.rows())
        print()
        print(
            format_table(
                curve.rows(),
                title=f"misprediction degradation ({curve.workload}, {curve.algorithm})",
            )
        )
    emit_bench_json({"misprediction_degradation": rows})

    worst_degradation = 0.0
    for curve in curves:
        maes = [c.injected_mae_minutes for c in curve.cells]
        # The injected error is the one asked for: zero at the anchor,
        # strictly growing with the level.
        assert maes[0] == 0.0
        assert maes == sorted(maes) and maes[-1] > maes[0]
        # Noise only redistributes estimates; it cannot improve on the
        # oracle by more than scheduling happenstance.  (Small *gains*
        # at low levels are real — lucky overestimates open backfill
        # holes — so no per-level monotonicity is asserted.)
        deg = curve.degradation_percent(curve.cells[-1])
        if deg is not None:
            worst_degradation = max(worst_degradation, deg)
    # Severe misprediction (sigma = 2, i.e. typical errors of ~7x) must
    # visibly hurt at least one policy's mean wait.
    assert worst_degradation > 10.0


class _FrozenPredictor(RuntimePredictor):
    """A predictor with its learning switched off: deploy-what-you-trained.

    Forwards ``predict`` and inherits the no-op lifecycle hooks, so the
    wrapped model never sees another completion — the offline-training
    regime every online learner in this bench is up against.
    """

    def __init__(self, base: RuntimePredictor) -> None:
        self.base = base
        self.name = f"frozen-{base.name}"
        self.elapsed_invariant = base.elapsed_invariant

    history_epoch = 0  # constant: frozen history never changes

    def predict(self, job: Job, elapsed: float = 0.0, now: float = 0.0) -> Prediction | None:
        return self.base.predict(job, elapsed, now)


def _frozen_smith(trace):
    """Smith warm-started on the first fifth of the trace, then frozen."""
    has_max = any(j.max_run_time is not None for j in trace)
    smith = SmithPredictor(
        default_templates(trace.available_fields, has_max_run_time=has_max)
    )
    prefix = list(trace)[: max(len(trace) // 5, 1)]
    return _FrozenPredictor(warm_start(smith, prefix))


def _mae_grid():
    grid: dict[str, dict[str, float]] = {}
    for w in WORKLOAD_ORDER:
        trace = bench_trace(w)
        row = {}
        for name in ("smith",) + ADAPTIVE:
            report = replay_prediction_error(trace, make_predictor(name, trace))
            row[name] = report.mean_abs_error_minutes
        row["frozen-smith"] = replay_prediction_error(
            trace, _frozen_smith(trace)
        ).mean_abs_error_minutes
        grid[w] = row
    return grid


def test_adaptive_predictors_vs_frozen_smith(benchmark):
    grid = run_once(benchmark, _mae_grid)
    rows = [
        {"Workload": w, **{k: round(v, 1) for k, v in row.items()}}
        for w, row in grid.items()
    ]
    print()
    print(
        format_table(
            rows, title="run-time prediction MAE (minutes): online vs. Smith"
        )
    )
    emit_bench_json({"misprediction_adaptive_mae": rows})

    # Online learning beats the frozen (offline-trained) Smith: the
    # frozen model never sees the completions that keep arriving.  (The
    # frozen baseline is scored over the full trace, *including* the
    # prefix it trained on — a handicap for the online side — so only
    # some-workload dominance is asserted, not every-workload.)
    beats_frozen = [
        w
        for w, row in grid.items()
        if min(row[a] for a in ADAPTIVE) < row["frozen-smith"]
    ]
    assert beats_frozen, "no adaptive predictor beat frozen Smith anywhere"
    # The headline claim: at least one online learner beats even the
    # *live* Smith predictor on at least one paper workload.
    beats_live = [
        w
        for w, row in grid.items()
        if min(row[a] for a in ADAPTIVE) < row["smith"]
    ]
    assert beats_live, "no adaptive predictor beat live Smith on any workload"
