"""Table 9 — wait-time prediction using Downey's conditional median.

Also asserts the paper's cross-table claim that the Smith predictor's
wait-time errors beat both Downey variants (19-87% better).
"""

from __future__ import annotations

import numpy as np

from _common import cell_metrics, emit_bench_json, print_wait_table, run_once, wait_time_rows


def _run():
    med = wait_time_rows("downey-median", ("fcfs", "lwf", "backfill"))
    smith = wait_time_rows("smith", ("fcfs", "lwf", "backfill"))
    return med, smith


def test_table09_wait_prediction_downey_median(benchmark):
    med, smith = run_once(benchmark, _run)
    print_wait_table("downey-median", med)
    emit_bench_json(
        {"table09": [c.as_row() for c in med]}, metrics=cell_metrics(med)
    )

    smith_by_key = {(c.workload, c.algorithm): c for c in smith}
    wins = [
        smith_by_key[(c.workload, c.algorithm)].mean_error_minutes
        <= c.mean_error_minutes * 1.05
        for c in med
    ]
    # Smith at least matches Downey's median variant in the large
    # majority of cells (paper: better in all of them).
    assert np.mean(wins) >= 0.7
