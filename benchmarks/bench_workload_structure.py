"""Structural validation of the synthetic workload substitution.

DESIGN.md argues the paper's claims survive the synthetic-trace
substitution because the traces preserve the *structure* the techniques
exploit.  This bench measures that structure for all four workloads:

- identity repetition (historical predictors need repeated runs);
- within-identity run-time dispersion versus overall dispersion
  (similar jobs must actually run similarly);
- arrival burstiness (queues must form);
- log-uniform fit quality per queue (Downey's model premise).
"""

from __future__ import annotations

import numpy as np

from repro.core.tables import format_table
from repro.workloads.analysis import (
    interarrival_stats,
    loguniform_fit_quality,
    overestimation_stats,
    repetition_stats,
    within_group_dispersion,
)

from _common import WORKLOAD_ORDER, bench_traces


def _run():
    rows = []
    for trace in bench_traces():
        rep = repetition_stats(trace)
        arr = interarrival_stats(trace)
        fits = loguniform_fit_quality(trace)
        mean_r2 = float(np.mean([f.r_squared for f in fits])) if fits else float("nan")
        over = overestimation_stats(trace)
        rows.append(
            {
                "Workload": trace.name,
                "Repeat frac": round(rep.repeat_fraction, 2),
                "Runs/identity": round(rep.mean_runs_per_identity, 1),
                "Within/overall spread": round(within_group_dispersion(trace), 2),
                "Arrival CV": round(arr.cv, 2),
                "Log-uniform R2": round(mean_r2, 2) if fits else "n/a",
                "Max/actual (median)": (
                    round(over.median_factor, 1) if over.n_with_max else "n/a"
                ),
            }
        )
    return rows


def test_workload_structure(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Synthetic workload structure"))

    by = {r["Workload"]: r for r in rows}
    for name in WORKLOAD_ORDER:
        r = by[name]
        # Most jobs repeat a known identity (archive traces: 60-90%).
        assert r["Repeat frac"] > 0.5, name
        # Similar jobs run similarly: within-identity spread well below
        # the trace-wide spread.
        assert r["Within/overall spread"] < 0.8, name
        # Arrivals are at least as bursty as Poisson.
        assert r["Arrival CV"] > 0.8, name
    # The queued workloads support Downey's premise reasonably well.
    for name in ("SDSC95", "SDSC96"):
        assert by[name]["Log-uniform R2"] > 0.7
    # User maxima are loose where they exist (the EASY-era observation
    # the max-run-time baseline inherits).
    for name in ("ANL", "CTC"):
        assert by[name]["Max/actual (median)"] > 1.5
