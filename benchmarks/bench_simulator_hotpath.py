"""Engineering bench — replay-engine hot path (events/sec, pass cost, speedup).

Measures the optimized :class:`repro.scheduler.Simulator` replaying each
paper workload under FCFS, LWF and conservative backfill with the
scheduler running on user maxima (the paper's §3 configuration), and the
optimized engine against the pre-overhaul
:class:`repro.scheduler.reference.ReferenceSimulator` on the backfill
replay — the policy whose per-pass full-queue replan dominated the old
profile.

Reported per cell:

- wall-clock seconds for the full replay,
- events/sec (SUBMIT + FINISH events drained per second),
- mean pass cost (wall seconds / scheduling passes).

A third test measures the cost of full JSONL event tracing
(``repro.obs``) — and of tracing plus the prediction audit trail —
against the default disabled mode, asserting schedule equality across
all three arms.

Scale follows the suite convention: ``REPRO_BENCH_JOBS`` jobs per
workload (default 1000, ``0`` = full paper sizes from Table 1).  Set
``REPRO_HOTPATH_JSON=/path/out.json`` to also write the measurements as
JSON (used by ``scripts/profile_hotpath.py`` comparisons and the CI
smoke job); otherwise the JSON goes to stdout.

The speedup assertion is deliberately modest (>= 1.5x, far below the
observed margin) and only enforced at ``REPRO_BENCH_JOBS >= 500`` —
tiny replays are dominated by constant costs and timing noise.
Schedule equality between the two engines is asserted at every scale;
the exhaustive equivalence gate lives in ``tests/test_simulator_parity.py``.
"""

from __future__ import annotations

import os
import time

from _common import WORKLOAD_ORDER, bench_jobs, bench_trace, emit_bench_json, run_once

from repro.core.registry import make_predictor
from repro.obs import Instrumentation, JsonlSink, Tracer, merge_snapshots
from repro.predictors.base import PointEstimator
from repro.scheduler.policies import BackfillPolicy, FCFSPolicy, LWFPolicy
from repro.scheduler.reference import ReferenceBackfillPolicy, ReferenceSimulator
from repro.scheduler.simulator import Simulator

POLICIES = (FCFSPolicy, LWFPolicy, BackfillPolicy)


def _replay(engine_cls, policy, trace, instrumentation=None):
    """Run one replay; return (result, wall_seconds, simulator)."""
    kwargs = {}
    est_kwargs = {}
    if instrumentation is not None:
        kwargs["instrumentation"] = instrumentation
        est_kwargs["instrumentation"] = instrumentation
    sim = engine_cls(
        policy,
        PointEstimator(make_predictor("max", trace), **est_kwargs),
        trace.total_nodes,
        **kwargs,
    )
    t0 = time.perf_counter()
    result = sim.run(trace)
    return result, time.perf_counter() - t0, sim


def _cell(workload: str, policy_cls) -> tuple[dict, dict]:
    trace = bench_trace(workload)
    result, wall, sim = _replay(Simulator, policy_cls(), trace)
    passes = max(sim.schedule_passes, 1)
    cell = {
        "workload": workload,
        "policy": policy_cls.name,
        "jobs": len(result.records),
        "wall_s": wall,
        "events_per_s": sim.events_processed / wall if wall > 0 else float("inf"),
        "passes": sim.schedule_passes,
        "pass_cost_us": wall / passes * 1e6,
    }
    return cell, sim.metrics_snapshot()


def test_hotpath_throughput(benchmark):
    """Events/sec and pass cost across workloads x policies (optimized engine)."""
    measured = [_cell(w, p) for w in WORKLOAD_ORDER for p in POLICIES]
    cells = [c for c, _ in measured]
    # pytest-benchmark wants one timed callable; re-time the heaviest
    # cell (full backfill replay of the largest workload measured).
    heaviest = max(
        (c for c in cells if c["policy"] == "Backfill"), key=lambda c: c["wall_s"]
    )
    trace = bench_trace(heaviest["workload"])
    run_once(benchmark, _replay, Simulator, BackfillPolicy(), trace)

    print()
    header = f"{'workload':<8} {'policy':<9} {'jobs':>6} {'wall(s)':>8} {'events/s':>10} {'passes':>7} {'us/pass':>9}"
    print(header)
    for c in cells:
        print(
            f"{c['workload']:<8} {c['policy']:<9} {c['jobs']:>6} "
            f"{c['wall_s']:>8.3f} {c['events_per_s']:>10.0f} "
            f"{c['passes']:>7} {c['pass_cost_us']:>9.1f}"
        )
    _emit_json(
        {"throughput": cells},
        metrics=merge_snapshots(*(snap for _, snap in measured)),
    )
    assert all(c["jobs"] > 0 for c in cells)


def test_hotpath_tracing_overhead(benchmark):
    """Full JSONL tracing vs. the default disabled mode, backfill replay.

    Not asserted against a budget — tracing is allowed to cost what it
    costs (it writes a line per decision).  What *is* asserted is that
    tracing never changes the schedule.  The <2% budget applies to the
    disabled mode and is checked across commits by comparing the
    ``test_hotpath_throughput`` numbers against the previous baseline.
    """
    rows = []
    for workload in WORKLOAD_ORDER:
        trace = bench_trace(workload)
        res_plain, wall_plain, _ = _replay(Simulator, BackfillPolicy(), trace)
        with open(os.devnull, "w", encoding="utf-8") as devnull:
            sink = JsonlSink(devnull)
            res_traced, wall_traced, _ = _replay(
                Simulator,
                BackfillPolicy(),
                trace,
                instrumentation=Instrumentation(tracer=Tracer(sink)),
            )
        assert res_traced.records == res_plain.records
        # Third arm: tracing + the prediction audit trail (the report
        # pipeline's configuration).  Also must not change the schedule.
        with open(os.devnull, "w", encoding="utf-8") as devnull:
            audit_sink = JsonlSink(devnull)
            res_audited, wall_audited, _ = _replay(
                Simulator,
                BackfillPolicy(),
                trace,
                instrumentation=Instrumentation(
                    tracer=Tracer(audit_sink), audit=True
                ),
            )
        assert res_audited.records == res_plain.records
        rows.append(
            {
                "workload": workload,
                "jobs": len(res_plain.records),
                "plain_s": wall_plain,
                "traced_s": wall_traced,
                "audited_s": wall_audited,
                "events_written": sink.events_written,
                "audit_events_written": audit_sink.events_written,
                "overhead_pct": 100.0 * (wall_traced / wall_plain - 1.0)
                if wall_plain > 0
                else 0.0,
                "audit_overhead_pct": 100.0 * (wall_audited / wall_plain - 1.0)
                if wall_plain > 0
                else 0.0,
            }
        )
    trace = bench_trace(WORKLOAD_ORDER[0])
    run_once(benchmark, _replay, Simulator, BackfillPolicy(), trace)

    print()
    print(f"{'workload':<8} {'jobs':>6} {'plain(s)':>9} {'traced(s)':>10} {'audited(s)':>11} {'events':>8} {'overhead':>9} {'audit ovh':>10}")
    for r in rows:
        print(
            f"{r['workload']:<8} {r['jobs']:>6} {r['plain_s']:>9.3f} "
            f"{r['traced_s']:>10.3f} {r['audited_s']:>11.3f} "
            f"{r['events_written']:>8} {r['overhead_pct']:>8.1f}% "
            f"{r['audit_overhead_pct']:>9.1f}%"
        )
    _emit_json({"tracing_overhead": rows})


def test_hotpath_provenance_overhead(benchmark):
    """Decision-provenance tracing vs. plain tracing, backfill replay.

    Provenance mode re-routes the policies through traced walks
    (binding attribution, hole tracking, change-only emission) on top
    of ordinary tracing; this arm measures that increment per workload
    — both sides write JSONL to the null device, only ``provenance``
    differs — and asserts schedule identity on every pair.  Following
    the telemetry-overhead bench, each workload runs four back-to-back
    A/B pairs with alternating inner order and reports the *minimum*
    per-pair ratio (the quietest pair carries the real cost; a
    systematic regression lifts every pair).

    The committed baseline
    (``benchmarks/baselines/hotpath_provenance_300.json``) gates the
    <= 3% budget on the lowest-churn replay (SDSC95) via
    ``scripts/check_bench_regression.py``.  Provenance cost is
    proportional to reservation churn — every ``reservation_binding``
    and ``backfill_hole_used`` event is one more encoded JSONL line —
    so the high-churn workloads cost more (ANL replans its deep queue
    almost every pass and runs ~10-15% over plain tracing; the SDSC
    workloads ~2-6%); their rows are emitted as context but carry no
    budget.  What the gated workload pins is the *bookkeeping* floor:
    attribution work is deferred to the passes that actually move a
    reservation, so a replay that moves few stays within the budget,
    and a regression on the every-pass path (the lazy-attribution
    design breaking) lifts it out.
    """
    rows = []
    for workload in WORKLOAD_ORDER:
        trace = bench_trace(workload)

        def run_traced(provenance: bool):
            with open(os.devnull, "w", encoding="utf-8") as devnull:
                sink = JsonlSink(devnull)
                res, wall, _ = _replay(
                    Simulator,
                    BackfillPolicy(),
                    trace,
                    instrumentation=Instrumentation(
                        tracer=Tracer(sink), provenance=provenance
                    ),
                )
            return res, wall, sink.events_written

        run_traced(False)  # warm caches outside the measurement
        run_traced(True)
        ratios = []
        events_plain = events_prov = 0
        for i in range(4):
            if i % 2 == 0:
                res_plain, wall_plain, events_plain = run_traced(False)
                res_prov, wall_prov, events_prov = run_traced(True)
            else:
                res_prov, wall_prov, events_prov = run_traced(True)
                res_plain, wall_plain, events_plain = run_traced(False)
            assert res_prov.records == res_plain.records
            ratios.append(wall_prov / wall_plain if wall_plain > 0 else 1.0)
        assert events_prov > events_plain
        rows.append(
            {
                "workload": workload,
                "jobs": len(trace.jobs),
                "events_plain": events_plain,
                "events_provenance": events_prov,
                "provenance_events": events_prov - events_plain,
                "overhead_pct": 100.0 * (min(ratios) - 1.0),
            }
        )
    trace = bench_trace("SDSC95")
    run_once(benchmark, _replay, Simulator, BackfillPolicy(), trace)

    print()
    print(
        f"{'workload':<8} {'jobs':>6} {'events':>7} {'+prov':>6} {'overhead':>9}"
    )
    for r in rows:
        print(
            f"{r['workload']:<8} {r['jobs']:>6} {r['events_plain']:>7} "
            f"{r['provenance_events']:>6} {r['overhead_pct']:>8.1f}%"
        )
    _emit_json({"provenance_tracing": rows})


def test_hotpath_speedup_vs_reference(benchmark):
    """Optimized vs. reference engine on the backfill replay, per workload."""
    rows = []
    for workload in WORKLOAD_ORDER:
        trace = bench_trace(workload)
        res_opt, wall_opt, _ = _replay(Simulator, BackfillPolicy(), trace)
        res_ref, wall_ref, _ = _replay(
            ReferenceSimulator, ReferenceBackfillPolicy(), trace
        )
        # Speedup without sameness is meaningless — gate it here too.
        assert res_opt.records == res_ref.records
        rows.append(
            {
                "workload": workload,
                "jobs": len(res_opt.records),
                "optimized_s": wall_opt,
                "reference_s": wall_ref,
                "speedup": wall_ref / wall_opt if wall_opt > 0 else float("inf"),
            }
        )
    trace = bench_trace(WORKLOAD_ORDER[0])
    run_once(benchmark, _replay, Simulator, BackfillPolicy(), trace)

    print()
    print(f"{'workload':<8} {'jobs':>6} {'optimized(s)':>13} {'reference(s)':>13} {'speedup':>8}")
    for r in rows:
        print(
            f"{r['workload']:<8} {r['jobs']:>6} {r['optimized_s']:>13.3f} "
            f"{r['reference_s']:>13.3f} {r['speedup']:>7.1f}x"
        )
    _emit_json({"speedup": rows})

    jobs = bench_jobs()
    if jobs is None or jobs >= 500:
        worst = min(r["speedup"] for r in rows)
        assert worst >= 1.5, f"backfill replay speedup regressed: {worst:.2f}x"


def _emit_json(payload: dict, *, metrics: dict | None = None) -> None:
    # Kept as a local name so the historical REPRO_HOTPATH_JSON contract
    # survives the move of the machinery into _common.emit_bench_json.
    emit_bench_json(payload, metrics=metrics, env_var="REPRO_HOTPATH_JSON")
