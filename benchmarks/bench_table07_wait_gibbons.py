"""Table 7 — wait-time prediction using Gibbons' run-time predictor."""

from __future__ import annotations

import numpy as np

from _common import print_wait_table, wait_time_rows


def test_table07_wait_prediction_gibbons(benchmark):
    cells = benchmark.pedantic(
        wait_time_rows,
        args=("gibbons", ("fcfs", "lwf", "backfill")),
        rounds=1,
        iterations=1,
    )
    print_wait_table("gibbons", cells)
    # Gibbons' history-based predictions, like Smith's, must land far
    # below the max-run-time regime (Table 5's 94-350%): aggregate under
    # ~120% of mean wait.
    assert np.mean([c.percent_of_mean_wait for c in cells]) < 120.0
