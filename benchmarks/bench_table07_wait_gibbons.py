"""Table 7 — wait-time prediction using Gibbons' run-time predictor."""

from __future__ import annotations

import numpy as np

from _common import cell_metrics, emit_bench_json, print_wait_table, run_once, wait_time_rows


def test_table07_wait_prediction_gibbons(benchmark):
    cells = run_once(
        benchmark, wait_time_rows, "gibbons", ("fcfs", "lwf", "backfill")
    )
    print_wait_table("gibbons", cells)
    emit_bench_json(
        {"table07": [c.as_row() for c in cells]}, metrics=cell_metrics(cells)
    )
    # Gibbons' history-based predictions, like Smith's, must land far
    # below the max-run-time regime (Table 5's 94-350%): aggregate under
    # ~120% of mean wait.
    assert np.mean([c.percent_of_mean_wait for c in cells]) < 120.0
