"""Robustness — the headline shapes on an independent workload model.

The primary benches use our calibrated synthetic traces.  If the
paper's findings are real, they must also hold on a workload drawn from
a *different* generative model with the same observed structure.  This
bench re-checks the core claims on a Feitelson-model workload
(paper ref. [5]):

- Smith run-time predictions beat user maxima;
- wait-time prediction error ordering: actual < smith < max;
- utilization is predictor-invariant; backfill's mean wait benefits
  from historical predictions.
"""

from __future__ import annotations

from repro.core.experiment import (
    run_runtime_prediction_experiment,
    run_scheduling_experiment,
    run_wait_time_experiment,
)
from repro.core.tables import format_table
from repro.workloads.feitelson import feitelson_trace

from _common import bench_jobs


def _trace():
    n = bench_jobs() or 5000
    return feitelson_trace(
        n_jobs=n, total_nodes=128, offered_load=0.65, seed=17
    )


def _run():
    trace = _trace()
    rt_rows = []
    for predictor in ("actual", "max", "smith", "gibbons"):
        c = run_runtime_prediction_experiment(trace, predictor)
        rt_rows.append(
            {
                "Predictor": predictor,
                "RT error (min)": round(c.mean_error_minutes, 2),
            }
        )
    sched_rows = []
    for predictor in ("actual", "max", "smith"):
        cell, _ = run_scheduling_experiment(trace, "backfill", predictor)
        sched_rows.append(
            {
                "Predictor": predictor,
                "Util %": round(cell.utilization_percent, 2),
                "Wait (min)": round(cell.mean_wait_minutes, 2),
            }
        )
    wait_rows = []
    for predictor in ("actual", "smith", "max"):
        cell, _, _ = run_wait_time_experiment(trace, "backfill", predictor)
        wait_rows.append(
            {
                "Predictor": predictor,
                "Wait-pred error (min)": round(cell.mean_error_minutes, 2),
            }
        )
    return rt_rows, sched_rows, wait_rows


def test_robustness_on_feitelson_model(benchmark):
    rt_rows, sched_rows, wait_rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(format_table(rt_rows, title="Feitelson model: run-time prediction"))
    print()
    print(format_table(sched_rows, title="Feitelson model: backfill scheduling"))
    print()
    print(format_table(wait_rows, title="Feitelson model: wait prediction (backfill)"))

    rt = {r["Predictor"]: r["RT error (min)"] for r in rt_rows}
    assert rt["actual"] == 0.0
    assert rt["smith"] < rt["max"]

    sched = {r["Predictor"]: r for r in sched_rows}
    assert (
        abs(sched["smith"]["Util %"] - sched["actual"]["Util %"]) < 8.0
    )
    assert sched["smith"]["Wait (min)"] <= sched["max"]["Wait (min)"] * 1.1

    wait = {r["Predictor"]: r["Wait-pred error (min)"] for r in wait_rows}
    assert wait["actual"] <= wait["smith"] <= wait["max"] * 1.05