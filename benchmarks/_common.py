"""Shared machinery for the per-table benchmark harness.

Each ``bench_tableNN_*.py`` regenerates one table of the paper at a
reduced, laptop-friendly scale and prints the measured rows next to the
paper's published rows.  Scale is controlled by ``REPRO_BENCH_JOBS``
(jobs per workload, default 1000); the full paper sizes (Table 1) run by
setting it to 0.

Absolute numbers are not expected to match — the traces are synthetic
stand-ins — but the shape assertions in each bench (and the side-by-side
print-out) verify the paper's qualitative findings.
"""

from __future__ import annotations

import json
import os
from functools import lru_cache
from typing import Iterable, Sequence

from repro.core.experiment import (
    SchedulingCell,
    WaitTimeCell,
    run_scheduling_table,
    run_wait_time_table,
)
from repro.core.paper_reference import (
    SCHEDULING_TABLES,
    WAIT_TIME_TABLES,
)
from repro.core.rounding import round_half_up
from repro.core.tables import format_table
from repro.workloads.archive import load_paper_workload
from repro.workloads.job import Trace

__all__ = [
    "bench_jobs",
    "bench_parallel",
    "bench_trace",
    "bench_traces",
    "wait_time_rows",
    "scheduling_rows",
    "print_wait_table",
    "print_scheduling_table",
    "run_once",
    "emit_bench_json",
    "cell_metrics",
    "WORKLOAD_ORDER",
]

WORKLOAD_ORDER = ("ANL", "CTC", "SDSC95", "SDSC96")


def bench_jobs() -> int | None:
    """Jobs per workload for benches; ``None`` means full paper size."""
    raw = int(os.environ.get("REPRO_BENCH_JOBS", "1000"))
    return None if raw <= 0 else raw


def bench_parallel() -> int:
    """Worker processes for the table drivers (``REPRO_BENCH_PARALLEL``).

    Default 1 keeps every bench on the serial path; ``0`` means one
    worker per CPU (see :mod:`repro.core.parallel`).
    """
    raw = int(os.environ.get("REPRO_BENCH_PARALLEL", "1"))
    return (os.cpu_count() or 1) if raw <= 0 else raw


@lru_cache(maxsize=None)
def bench_trace(name: str) -> Trace:
    return load_paper_workload(name, n_jobs=bench_jobs())


def bench_traces() -> list[Trace]:
    return [bench_trace(name) for name in WORKLOAD_ORDER]


def wait_time_rows(predictor: str, algorithms: Sequence[str]) -> list[WaitTimeCell]:
    return run_wait_time_table(
        predictor,
        workloads=bench_traces(),
        algorithms=algorithms,
        max_workers=bench_parallel(),
    )


def scheduling_rows(predictor: str) -> list[SchedulingCell]:
    return run_scheduling_table(
        predictor, workloads=bench_traces(), max_workers=bench_parallel()
    )


def run_once(benchmark, fn, *args, **kwargs):
    """One timed invocation through pytest-benchmark.

    Every bench in this suite runs its workload exactly once — replays
    are deterministic and expensive, so repeat rounds only add wall
    clock.  This wraps the ``pedantic(rounds=1, iterations=1)``
    incantation and returns ``fn``'s result.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit_bench_json(
    payload: dict,
    *,
    metrics: dict | None = None,
    env_var: str = "REPRO_BENCH_JSON",
) -> None:
    """Write a bench's measurements as JSON, merged into ``$env_var``.

    When the environment variable names a file, the payload is merged
    into its existing contents (so the tests of one bench module can
    each contribute a section); otherwise the JSON goes to stdout.
    ``metrics`` attaches a registry snapshot (see ``repro.obs``) under
    the ``"metrics"`` key so perf numbers travel with the counter state
    that produced them.
    """
    payload = dict(payload, bench_jobs=bench_jobs())
    if metrics is not None:
        payload["metrics"] = metrics
    path = os.environ.get(env_var)
    if path:
        existing = {}
        if os.path.exists(path):
            with open(path) as fh:
                try:
                    existing = json.load(fh)
                except ValueError:
                    existing = {}
        existing.update(payload)
        with open(path, "w") as fh:
            json.dump(existing, fh, indent=2)
    else:
        print(json.dumps(payload))


def cell_metrics(cells: Iterable[WaitTimeCell] | Iterable[SchedulingCell]) -> dict:
    """Merge the registry snapshots attached to experiment cells."""
    from repro.obs import merge_snapshots

    return merge_snapshots(*(c.metrics for c in cells if c.metrics is not None))


def print_wait_table(predictor: str, cells: Iterable[WaitTimeCell]) -> None:
    table_no, ref = WAIT_TIME_TABLES[predictor]
    rows = []
    for c in cells:
        r = ref.get((c.workload, c.algorithm))
        rows.append(
            {
                "Workload": c.workload,
                "Algorithm": c.algorithm,
                "Error (min)": round(c.mean_error_minutes, 2),
                "% of wait": round_half_up(c.percent_of_mean_wait),
                "Paper err": r.mean_error_minutes if r else "",
                "Paper %": r.percent_of_mean_wait if r else "",
            }
        )
    print()
    print(
        format_table(
            rows,
            title=(
                f"Table {table_no} — wait-time prediction with the "
                f"{predictor!r} run-time predictor (measured vs. paper)"
            ),
        )
    )


def print_scheduling_table(predictor: str, cells: Iterable[SchedulingCell]) -> None:
    table_no, ref = SCHEDULING_TABLES[predictor]
    rows = []
    for c in cells:
        r = ref.get((c.workload, c.algorithm))
        rows.append(
            {
                "Workload": c.workload,
                "Algorithm": c.algorithm,
                "Util %": round(c.utilization_percent, 2),
                "Wait (min)": round(c.mean_wait_minutes, 2),
                "Paper util": r.utilization_percent if r else "",
                "Paper wait": r.mean_wait_minutes if r else "",
            }
        )
    print()
    print(
        format_table(
            rows,
            title=(
                f"Table {table_no} — scheduling performance with the "
                f"{predictor!r} run-time predictor (measured vs. paper)"
            ),
        )
    )
