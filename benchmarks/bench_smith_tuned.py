"""Ablation — curated default templates vs. GA-searched template sets.

The paper's methodology searches templates per workload; "smith" in the
other benches uses curated defaults for speed.  This bench quantifies
what the search buys on each workload's run-time prediction error.
"""

from __future__ import annotations

from repro.core.experiment import run_runtime_prediction_experiment
from repro.core.tables import format_table

from _common import bench_traces


def _run():
    cells = []
    for trace in bench_traces():
        for predictor in ("smith", "smith-tuned", "max"):
            cells.append(run_runtime_prediction_experiment(trace, predictor))
    return cells


def test_smith_tuned_vs_defaults(benchmark):
    cells = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        {
            "Workload": c.workload,
            "Predictor": c.predictor,
            "Error (min)": round(c.mean_error_minutes, 2),
            "% of mean run": round(c.percent_of_mean_run_time),
        }
        for c in cells
    ]
    print()
    print(format_table(rows, title="Template search payoff (replay error)"))

    by = {(c.workload, c.predictor): c for c in cells}
    workloads = sorted({c.workload for c in cells})
    wins = 0
    for w in workloads:
        # Both Smith variants beat the max-run-time baseline everywhere.
        assert by[(w, "smith")].mean_error_minutes < by[(w, "max")].mean_error_minutes
        assert (
            by[(w, "smith-tuned")].mean_error_minutes
            < by[(w, "max")].mean_error_minutes
        )
        if (
            by[(w, "smith-tuned")].mean_error_minutes
            <= by[(w, "smith")].mean_error_minutes
        ):
            wins += 1
    # The searched sets win on most workloads (they were searched at a
    # slightly different trace length, so demand a majority, not a sweep).
    assert wins >= len(workloads) // 2
