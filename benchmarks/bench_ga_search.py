"""§2.1 — the genetic template search.

The paper's 12 offline searches are a compute budget, not an algorithm;
this bench runs a reduced-budget search per workload family and checks
that (a) the discovered template set's replay error improves on the
first generation's best, and (b) it beats the max-run-time baseline —
i.e. the search actually finds structure.
"""

from __future__ import annotations

from repro.core.tables import format_table
from repro.predictors.ga import GAConfig, search_templates
from repro.predictors.replay import replay_prediction_error
from repro.predictors.simple import MaxRuntimePredictor
from repro.predictors.smith import SmithPredictor

from _common import bench_trace


def _run():
    trace = bench_trace("ANL")
    cfg = GAConfig(population=12, generations=6, eval_jobs=400, seed=0)
    templates, history = search_templates(trace, config=cfg)
    found = replay_prediction_error(trace, SmithPredictor(templates))
    baseline = replay_prediction_error(trace, MaxRuntimePredictor.from_trace(trace))
    return templates, history, found, baseline


def test_ga_template_search(benchmark):
    templates, history, found, baseline = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    rows = [{"Template": t.describe()} for t in templates]
    print()
    print(format_table(rows, title="GA-discovered template set (ANL)"))
    print(
        f"generation best errors (min): "
        f"{[round(e / 60, 1) for e in history.best_errors]}"
    )
    print(
        f"full-replay error: GA {found.mean_abs_error_minutes:.1f} min "
        f"vs max-run-time {baseline.mean_abs_error_minutes:.1f} min"
    )
    assert history.best_errors[-1] <= history.best_errors[0]
    assert found.mean_abs_error < baseline.mean_abs_error
