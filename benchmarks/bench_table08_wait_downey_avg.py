"""Table 8 — wait-time prediction using Downey's conditional average."""

from __future__ import annotations

import numpy as np

from _common import print_wait_table, wait_time_rows


def test_table08_wait_prediction_downey_average(benchmark):
    cells = benchmark.pedantic(
        wait_time_rows,
        args=("downey-average", ("fcfs", "lwf", "backfill")),
        rounds=1,
        iterations=1,
    )
    print_wait_table("downey-average", cells)
    # All cells produced; errors finite and positive somewhere (Downey's
    # one-distribution-per-queue model cannot be exact).
    assert len(cells) == 12
    assert all(np.isfinite(c.mean_error_minutes) for c in cells)
    assert any(c.mean_error_minutes > 0 for c in cells)
