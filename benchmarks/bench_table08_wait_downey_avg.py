"""Table 8 — wait-time prediction using Downey's conditional average."""

from __future__ import annotations

import numpy as np

from _common import cell_metrics, emit_bench_json, print_wait_table, run_once, wait_time_rows


def test_table08_wait_prediction_downey_average(benchmark):
    cells = run_once(
        benchmark, wait_time_rows, "downey-average", ("fcfs", "lwf", "backfill")
    )
    print_wait_table("downey-average", cells)
    emit_bench_json(
        {"table08": [c.as_row() for c in cells]}, metrics=cell_metrics(cells)
    )
    # All cells produced; errors finite and positive somewhere (Downey's
    # one-distribution-per-queue model cannot be exact).
    assert len(cells) == 12
    assert all(np.isfinite(c.mean_error_minutes) for c in cells)
    assert any(c.mean_error_minutes > 0 for c in cells)
