"""Engineering bench — prediction-service query storm.

The prediction service's contract is that repeated queries between
scheduler events are O(1) epoch-cache hits.  This bench replays a
compressed workload prefix into a :class:`repro.service.PredictionService`
(leaving a congested live queue), then measures three regimes:

- **storm** — many single-job queries at cache-hit steady state; the
  headline ``predictions_per_s`` (target >= 20k/s, asserted only under
  ``REPRO_BENCH_STRICT_GAIN=1`` — CI runners are too noisy);
- **batch** — whole-queue ``predict_batch`` calls, one walk per epoch;
- **churn** — a clock tick between query rounds, so every round pays
  one cache warm (the per-epoch miss cost).

Two guarantees are enforced on every run:

- **Parity** — each cached answer must be bit-identical to an uncached
  :func:`repro.waitpred.predictor.predict_wait` computation
  (``parity_failures`` must stay 0);
- **Accounting** — the hit/miss counters must show exactly one miss per
  epoch (the cache actually caches).

Deterministic keys (queue depth, hit/miss/fallback counts,
parity_failures) are gated against ``baselines/service_300.json`` by
``scripts/check_bench_regression.py``; throughput and latency keys are
wall-clock and ignored there.
"""

from __future__ import annotations

import os
import time

from _common import bench_trace, emit_bench_json, run_once
from repro.obs import histogram_quantile
from repro.predictors.base import PointEstimator
from repro.predictors.simple import MaxRuntimePredictor
from repro.scheduler.policies import BackfillPolicy
from repro.scheduler.simulator import Simulator
from repro.service import PredictionService, SimulatorFeed
from repro.waitpred.predictor import predict_wait
from repro.workloads.transform import compress_interarrival

_WORKLOAD = "SDSC96"
_COMPRESS = 50.0
_STORM_QUERIES = 30_000
_BATCH_ROUNDS = 200
_CHURN_EPOCHS = 200


def _loaded_service() -> PredictionService:
    """A service mirroring a congested mid-replay state."""
    trace = compress_interarrival(bench_trace(_WORKLOAD), _COMPRESS)
    svc = PredictionService(
        BackfillPolicy(),
        PointEstimator(MaxRuntimePredictor(), default=600.0),
        trace.total_nodes,
    )
    sim = Simulator(
        BackfillPolicy(),
        PointEstimator(MaxRuntimePredictor(), default=600.0),
        trace.total_nodes,
    )
    sim.add_observer(SimulatorFeed(svc))
    # Stop at the last submission: the queue is at its deepest.
    sim.run(trace, until_time=max(j.submit_time for j in trace.jobs))
    return svc


def test_service_query_storm(benchmark):
    svc = _loaded_service()
    queued = svc.queued_ids
    assert queued, "compressed replay must leave a live queue"

    # -- parity: cached answers == uncached predict_wait, bit-identical
    parity_failures = 0
    for jid in queued:
        cached = svc.predict(jid)
        fresh = predict_wait(svc.snapshot(), svc.policy, svc.estimator, jid)
        if cached != fresh:
            parity_failures += 1
    assert parity_failures == 0

    # -- storm: single queries at cache-hit steady state
    n = _STORM_QUERIES
    t0 = time.perf_counter()
    for i in range(n):
        svc.predict(queued[i % len(queued)])
    storm_s = time.perf_counter() - t0
    storm_qps = n / storm_s

    # -- batch: whole-queue answers from the warmed epoch cache
    t0 = time.perf_counter()
    for _ in range(_BATCH_ROUNDS):
        svc.predict_batch()
    batch_s = time.perf_counter() - t0
    batch_qps = _BATCH_ROUNDS * len(queued) / batch_s

    # -- accounting so far: everything after the first warm was a hit
    counters = svc.stats()["counters"]
    expected = len(queued) + n + _BATCH_ROUNDS * len(queued)
    assert counters["service.queries"] == expected
    assert counters["service.cache_misses"] == 1
    assert counters["service.cache_hits"] == expected - 1
    assert counters["service.fallback_simulations"] == 0

    # -- churn: a tick per round forces one cache warm per epoch
    t0 = time.perf_counter()
    for _ in range(_CHURN_EPOCHS):
        svc.tick(svc.now + 1.0)
        svc.predict(queued[0])
    churn_s = time.perf_counter() - t0
    churn_eps = _CHURN_EPOCHS / churn_s
    counters = svc.stats()["counters"]
    assert counters["service.cache_misses"] == 1 + _CHURN_EPOCHS

    hist = svc.stats()["histograms"]["service.query_latency_seconds"]
    p50 = histogram_quantile(hist, 0.50)
    p99 = histogram_quantile(hist, 0.99)

    if os.environ.get("REPRO_BENCH_STRICT_GAIN") == "1":
        # The tentpole targets, asserted on dedicated hardware only.
        assert storm_qps >= 20_000, f"{storm_qps:.0f}/s below the 20k target"
        assert p99 < 1e-3, f"p99 {p99 * 1e3:.2f} ms not sub-millisecond"

    run_once(benchmark, lambda: svc.predict(queued[0]))
    print(
        f"\nprediction-service query storm ({_WORKLOAD} x{_COMPRESS:.0f}, "
        f"{len(queued)}-deep queue, backfill):"
    )
    print(f"  storm  {storm_qps:10.0f} predictions/s (cache-hit singles)")
    print(f"  batch  {batch_qps:10.0f} predictions/s (whole-queue batches)")
    print(f"  churn  {churn_eps:10.0f} epochs/s (tick + re-warm per epoch)")
    print(f"  latency p50 {p50 * 1e6:8.1f} us   p99 {p99 * 1e6:8.1f} us")
    emit_bench_json({
        "service_querystorm": {
            "queue_depth": len(queued),
            "running_jobs": len(svc.running_ids),
            "queries": counters["service.queries"],
            "cache_hits": counters["service.cache_hits"],
            "cache_misses": counters["service.cache_misses"],
            "fallback_simulations": counters["service.fallback_simulations"],
            "parity_failures": parity_failures,
            "storm_predictions_per_s": storm_qps,
            "batch_predictions_per_s": batch_qps,
            "churn_epochs_per_s": churn_eps,
            "latency_p50_s": p50,
            "latency_p99_s": p99,
        }
    })
