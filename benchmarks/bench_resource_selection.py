"""§1 motivation — resource selection guided by wait-time predictions.

Routes one arrival stream across a three-machine federation under four
broker strategies and checks the motivating claim: predicted-wait
routing (the paper's forward simulation run per machine) at least
matches uninformed routing, and load-aware strategies beat random.
"""

from __future__ import annotations

from repro.core.tables import format_table
from repro.metacomputing import (
    LeastQueuedWorkRouting,
    Machine,
    MetaSimulator,
    PredictedWaitRouting,
    RandomRouting,
    RoundRobinRouting,
)
from repro.predictors.base import PointEstimator
from repro.predictors.simple import ActualRuntimePredictor
from repro.scheduler.policies import BackfillPolicy

from _common import bench_trace


def _federation():
    return [
        Machine(name, BackfillPolicy(),
                PointEstimator(ActualRuntimePredictor()), nodes)
        for name, nodes in (("m80", 80), ("m48", 48), ("m32", 32))
    ]


def _run():
    arrivals = bench_trace("ANL").map(lambda j: j.with_(nodes=min(j.nodes, 32)))
    rows = []
    waits = {}
    for strategy in (
        RandomRouting(seed=0),
        RoundRobinRouting(),
        LeastQueuedWorkRouting(),
        PredictedWaitRouting(),
    ):
        result = MetaSimulator(_federation(), strategy).run(arrivals)
        waits[result.strategy] = result.mean_wait_minutes
        rows.append(
            {
                "Strategy": result.strategy,
                "Mean wait (min)": round(result.mean_wait_minutes, 2),
            }
        )
    return rows, waits


def test_resource_selection(benchmark):
    rows, waits = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Broker strategy comparison (ANL arrivals)"))

    # Informed routing beats blind routing; prediction-based routing is
    # at least competitive with the best heuristic.
    assert waits["least-work"] <= waits["random"]
    assert waits["predicted-wait"] <= waits["random"]
    assert waits["predicted-wait"] <= 1.5 * waits["least-work"] + 1.0
