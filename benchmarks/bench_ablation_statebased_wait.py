"""Ablation — forward-simulation vs. state-based wait-time prediction.

The paper's §5 proposes predicting waits from *similar past scheduler
states* instead of forward simulation, hoping to beat LWF's large
built-in error.  This bench runs both techniques side by side on the
high-load workload under LWF and backfill.
"""

from __future__ import annotations

from repro.core.registry import make_policy, make_predictor
from repro.core.tables import format_table
from repro.predictors.base import PointEstimator
from repro.scheduler.simulator import Simulator
from repro.waitpred.evaluation import evaluate_wait_predictions
from repro.waitpred.predictor import WaitTimePredictor
from repro.waitpred.statebased import StateBasedWaitPredictor

from _common import bench_trace


def _run():
    trace = bench_trace("ANL")
    rows = []
    for policy_name in ("lwf", "backfill"):
        policy = make_policy(policy_name)
        scheduler_estimator = PointEstimator(make_predictor("max", trace))
        sim = Simulator(policy, scheduler_estimator, trace.total_nodes)
        forward = WaitTimePredictor(
            policy,
            make_predictor("smith", trace),
            scheduler_estimator=scheduler_estimator,
        )
        state = StateBasedWaitPredictor(
            PointEstimator(make_predictor("smith", trace))
        )
        sim.add_observer(forward)
        sim.add_observer(state)
        result = sim.run(trace)
        for label, obs in (("forward-sim", forward), ("state-based", state)):
            report = evaluate_wait_predictions(result, obs.predicted_waits)
            rows.append(
                {
                    "Algorithm": policy.name,
                    "Technique": label,
                    "Error (min)": round(report.mean_abs_error_minutes, 2),
                    "% of wait": round(report.percent_of_mean_wait),
                }
            )
    return rows


def test_ablation_state_based_wait_prediction(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows, title="Wait-prediction technique ablation (ANL, smith run times)"
        )
    )
    # Both techniques must produce finite, sane errors; the state-based
    # method must at least be in the same regime as forward simulation
    # (the paper only *hopes* it is better — no claim to assert).
    by = {(r["Algorithm"], r["Technique"]): r for r in rows}
    for algo in ("LWF", "Backfill"):
        fwd = by[(algo, "forward-sim")]["Error (min)"]
        stb = by[(algo, "state-based")]["Error (min)"]
        assert fwd >= 0 and stb >= 0
        assert stb < 10 * max(fwd, 1.0)
