"""§5 extension — reservation delay vs. run-time prediction accuracy.

The paper's future work combines queue scheduling with reservations for
co-allocation.  A reservation is only as safe as the scheduler's belief
about when running/backfilled jobs end, so reservation delay is another
lens on predictor accuracy: with the oracle, backfill keeps every window
clear; with loose maxima it over-protects (safe but wasteful); a myopic
policy (FCFS) tramples windows regardless.
"""

from __future__ import annotations

import numpy as np

from repro.core.registry import make_policy, make_predictor
from repro.core.tables import format_table
from repro.predictors.base import PointEstimator
from repro.scheduler.reservations import Reservation
from repro.scheduler.simulator import Simulator

from _common import bench_trace


def _reservations(trace, count=6):
    span = trace.span
    nodes = max(trace.total_nodes // 4, 1)
    return [
        Reservation(
            res_id=i,
            start_time=span * (i + 1) / (count + 2),
            duration=2 * 3600.0,
            nodes=nodes,
        )
        for i in range(count)
    ]


def _run():
    trace = bench_trace("ANL")
    rows = []
    delays = {}
    for policy_name, predictor_name in (
        ("fcfs", "actual"),
        ("backfill", "actual"),
        ("backfill", "max"),
        ("backfill", "smith"),
        ("easy", "actual"),
    ):
        sim = Simulator(
            make_policy(policy_name),
            PointEstimator(make_predictor(predictor_name, trace)),
            trace.total_nodes,
        )
        sim.add_reservations(_reservations(trace))
        sim.run(trace)
        ds = [r.delay / 60.0 for r in sim.reservation_records]
        delays[(policy_name, predictor_name)] = ds
        rows.append(
            {
                "Policy": policy_name,
                "Predictor": predictor_name,
                "Mean delay (min)": round(float(np.mean(ds)), 2),
                "Max delay (min)": round(float(np.max(ds)), 2),
                "On time": f"{sum(d < 1.0 for d in ds)}/{len(ds)}",
            }
        )
    return rows, delays


def test_reservation_delay_by_predictor(benchmark):
    rows, delays = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Reservation delay (ANL, 6 windows)"))

    # Reservation-aware backfill with the oracle must beat myopic FCFS.
    assert np.mean(delays[("backfill", "actual")]) <= np.mean(
        delays[("fcfs", "actual")]
    )
    # All delays are non-negative and every reservation eventually ran.
    for ds in delays.values():
        assert len(ds) == 6
        assert all(d >= -1e-6 for d in ds)
    # Oracle-driven backfill keeps most windows on time.
    on_time = sum(d < 1.0 for d in delays[("backfill", "actual")])
    assert on_time >= 4
