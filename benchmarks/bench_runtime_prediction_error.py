"""§3 text numbers — run-time prediction error per predictor.

The paper quotes run-time prediction errors as percentages of mean run
time (Smith 33-73%, and 39-92% better than the alternatives).  This
bench replays every predictor over every workload and prints the grid.
"""

from __future__ import annotations

import numpy as np

from repro.core.experiment import run_runtime_prediction_experiment
from repro.core.registry import PREDICTOR_NAMES
from repro.core.tables import format_table

from _common import bench_traces


def _run():
    cells = []
    for trace in bench_traces():
        for name in PREDICTOR_NAMES:
            cells.append(run_runtime_prediction_experiment(trace, name))
    return cells


def test_runtime_prediction_error_grid(benchmark):
    cells = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        {
            "Workload": c.workload,
            "Predictor": c.predictor,
            "Error (min)": round(c.mean_error_minutes, 2),
            "% of mean run": round(c.percent_of_mean_run_time),
        }
        for c in cells
    ]
    print()
    print(format_table(rows, title="Run-time prediction error (§3)"))

    by = {(c.workload, c.predictor): c for c in cells}
    workloads = sorted({c.workload for c in cells})
    for w in workloads:
        assert by[(w, "actual")].mean_error_minutes == 0.0
        # Smith beats the max-run-time baseline everywhere.
        assert by[(w, "smith")].mean_error_minutes < by[(w, "max")].mean_error_minutes
    # Aggregate: Smith beats each Downey variant on average.
    for rival in ("downey-average", "downey-median"):
        smith_mean = np.mean([by[(w, "smith")].mean_error_minutes for w in workloads])
        rival_mean = np.mean([by[(w, rival)].mean_error_minutes for w in workloads])
        assert smith_mean < rival_mean
