"""Ablation — conservative vs. EASY backfill reservation depth.

The paper's backfill reserves every queued job (conservative); EASY
(Lifka [11], the system the paper's max-run-time baseline comes from)
reserves only the head.  This ablation quantifies what the reservation
depth costs/buys under the oracle and under loose maxima on the
high-load workload.
"""

from __future__ import annotations

from repro.core.experiment import run_scheduling_experiment
from repro.core.tables import format_table

from _common import bench_trace


def _run():
    trace = bench_trace("ANL")
    cells = []
    for policy in ("backfill", "easy"):
        for predictor in ("actual", "max", "smith"):
            cell, _ = run_scheduling_experiment(trace, policy, predictor)
            cells.append(cell)
    return cells


def test_ablation_backfill_variants(benchmark):
    cells = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        {
            "Variant": c.algorithm,
            "Predictor": c.predictor,
            "Util %": round(c.utilization_percent, 2),
            "Mean wait (min)": round(c.mean_wait_minutes, 2),
        }
        for c in cells
    ]
    print()
    print(format_table(rows, title="Backfill reservation depth ablation (ANL)"))

    by = {(c.algorithm, c.predictor): c for c in cells}
    # Both variants fill the machine about equally.
    for pred in ("actual", "max", "smith"):
        assert (
            abs(
                by[("Backfill", pred)].utilization_percent
                - by[("EASY", pred)].utilization_percent
            )
            < 8.0
        )
    # EASY's aggressiveness generally shortens mean waits relative to
    # conservative reservations under identical estimates.
    easier = [
        by[("EASY", p)].mean_wait_minutes
        <= 1.25 * by[("Backfill", p)].mean_wait_minutes
        for p in ("actual", "max", "smith")
    ]
    assert all(easier)
