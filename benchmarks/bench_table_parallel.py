"""Engineering bench — parallel table execution (speedup vs the serial driver).

The paper's tables are grids of independent replay cells;
``run_scheduling_table(..., max_workers=N)`` fans them across a process
pool (:mod:`repro.core.parallel`).  This bench runs one reduced-scale
table serially and at 2 and 4 workers, asserts cell-for-cell equality
with the serial result at every width, and emits the measured wall
clocks plus speedups as standard bench JSON.

Cell-equality is asserted at every scale and core count.  The speedup
floor is deliberately modest (>= 2.0x at 4 workers, below the ~3x a
4-core machine reaches) and only armed on runners with at least 4 CPUs
at ``REPRO_BENCH_JOBS >= 500`` — below that, process start-up and trace
regeneration dominate the replay work and the measurement is noise.

A second bench measures the cost of campaign telemetry: the same table
with and without a journaling :class:`~repro.obs.campaign.CampaignTelemetry`
attached, run as back-to-back A/B *pairs* with the inner order
alternating (plain/telem, telem/plain, ...).  The reported overhead is
the **minimum per-pair ratio**: shared-machine noise is correlated in
time, so the quietest pair measures the true cost, while a real
systematic regression lifts every pair and cannot hide.  The bench
asserts bit-identical cells and emits ``overhead_pct``, which
``scripts/check_bench_regression.py`` gates against the committed 3%
budget in ``benchmarks/baselines/table_parallel_300.json``.
"""

from __future__ import annotations

import os
import time

from _common import bench_jobs, emit_bench_json, run_once

from repro.core.experiment import run_scheduling_table
from repro.obs.campaign import CampaignTelemetry, check_campaign_journal, read_campaign_journal

WORKLOADS = ("ANL", "CTC", "SDSC95", "SDSC96")
ALGORITHMS = ("lwf", "backfill")
WIDTHS = (2, 4)


def _table(max_workers: int):
    return run_scheduling_table(
        "max",
        workloads=list(WORKLOADS),
        algorithms=ALGORITHMS,
        n_jobs=bench_jobs(),
        max_workers=max_workers,
    )


def test_table_parallel_scaling(benchmark):
    timings: dict[int, float] = {}

    def timed(max_workers: int):
        t0 = time.perf_counter()
        cells = _table(max_workers)
        timings[max_workers] = time.perf_counter() - t0
        return cells

    serial = timed(1)
    parallel = {w: timed(w) for w in WIDTHS[:-1]}
    parallel[WIDTHS[-1]] = run_once(benchmark, timed, WIDTHS[-1])

    # Parity is the contract: same cells, same order, any pool width.
    for width, cells in parallel.items():
        assert cells == serial, f"parallel table (width {width}) diverged"

    rows = [
        {
            "workers": width,
            "wall_s": round(timings[width], 3),
            "speedup": round(timings[1] / timings[width], 2)
            if timings[width] > 0
            else float("inf"),
        }
        for width in (1, *WIDTHS)
    ]
    emit_bench_json({"table_parallel": rows})

    print()
    print(f"{'workers':>8} {'wall(s)':>9} {'speedup':>8}")
    for r in rows:
        print(f"{r['workers']:>8} {r['wall_s']:>9.3f} {r['speedup']:>7.2f}x")

    jobs = bench_jobs()
    if (os.cpu_count() or 1) >= 4 and (jobs is None or jobs >= 500):
        best = timings[1] / timings[4]
        assert best >= 2.0, f"4-worker table speedup regressed: {best:.2f}x"


TELEMETRY_WORKERS = 2


def _timed_table(telemetry=None):
    t0 = time.perf_counter()
    cells = run_scheduling_table(
        "max",
        workloads=list(WORKLOADS),
        algorithms=ALGORITHMS,
        n_jobs=bench_jobs(),
        max_workers=TELEMETRY_WORKERS,
        telemetry=telemetry,
    )
    return time.perf_counter() - t0, cells


def _overhead_pairs(journal_dir):
    """Run alternating-order A/B pairs; return per-pair walls + cells."""
    pairs: list[tuple[float, float]] = []  # (plain_wall, telem_wall)
    plain_cells = telem_cells = None
    journals = []

    def telemetered():
        journal = os.path.join(journal_dir, f"campaign-{len(journals)}.jsonl")
        journals.append(journal)
        telemetry = CampaignTelemetry(journal)
        try:
            return _timed_table(telemetry)
        finally:
            telemetry.close()

    for order in ("pt", "tp", "pt", "tp"):
        if order == "pt":
            plain_wall, plain_cells = _timed_table()
            telem_wall, telem_cells = telemetered()
        else:
            telem_wall, telem_cells = telemetered()
            plain_wall, plain_cells = _timed_table()
        pairs.append((plain_wall, telem_wall))
    return pairs, plain_cells, telem_cells, journals


def test_table_telemetry_overhead(benchmark, tmp_path):
    pairs, plain_cells, telem_cells, journals = run_once(
        benchmark, _overhead_pairs, str(tmp_path)
    )

    # The probe wraps the cell fn without touching it: results must be
    # bit-identical with telemetry on or off.
    assert telem_cells == plain_cells, "telemetered table diverged from plain run"
    # Every journal written during the bench must replay cleanly.
    for journal in journals:
        stats = check_campaign_journal(read_campaign_journal(journal))
        assert stats["cells_done"] == len(plain_cells)

    # Shared-machine noise is correlated in time, so the quietest
    # back-to-back pair carries the real cost; a systematic regression
    # lifts every pair and survives the min.
    ratios = [telem / plain for plain, telem in pairs if plain > 0]
    overhead_pct = 100.0 * (min(ratios) - 1.0) if ratios else 0.0
    min_plain = min(plain for plain, _ in pairs)
    min_telem = min(telem for _, telem in pairs)

    emit_bench_json(
        {
            "table_parallel_telemetry": {
                "workers": TELEMETRY_WORKERS,
                "plain_wall_s": round(min_plain, 3),
                "telemetry_wall_s": round(min_telem, 3),
                "overhead_pct": round(overhead_pct, 2),
            }
        }
    )

    print()
    print(
        f"telemetry overhead @ {TELEMETRY_WORKERS} workers: "
        f"plain {min_plain:.3f}s, telemetered {min_telem:.3f}s, "
        f"best-pair overhead {overhead_pct:+.2f}%"
    )
