"""Engineering bench — parallel table execution (speedup vs the serial driver).

The paper's tables are grids of independent replay cells;
``run_scheduling_table(..., max_workers=N)`` fans them across a process
pool (:mod:`repro.core.parallel`).  This bench runs one reduced-scale
table serially and at 2 and 4 workers, asserts cell-for-cell equality
with the serial result at every width, and emits the measured wall
clocks plus speedups as standard bench JSON.

Cell-equality is asserted at every scale and core count.  The speedup
floor is deliberately modest (>= 2.0x at 4 workers, below the ~3x a
4-core machine reaches) and only armed on runners with at least 4 CPUs
at ``REPRO_BENCH_JOBS >= 500`` — below that, process start-up and trace
regeneration dominate the replay work and the measurement is noise.
"""

from __future__ import annotations

import os
import time

from _common import bench_jobs, emit_bench_json, run_once

from repro.core.experiment import run_scheduling_table

WORKLOADS = ("ANL", "CTC", "SDSC95", "SDSC96")
ALGORITHMS = ("lwf", "backfill")
WIDTHS = (2, 4)


def _table(max_workers: int):
    return run_scheduling_table(
        "max",
        workloads=list(WORKLOADS),
        algorithms=ALGORITHMS,
        n_jobs=bench_jobs(),
        max_workers=max_workers,
    )


def test_table_parallel_scaling(benchmark):
    timings: dict[int, float] = {}

    def timed(max_workers: int):
        t0 = time.perf_counter()
        cells = _table(max_workers)
        timings[max_workers] = time.perf_counter() - t0
        return cells

    serial = timed(1)
    parallel = {w: timed(w) for w in WIDTHS[:-1]}
    parallel[WIDTHS[-1]] = run_once(benchmark, timed, WIDTHS[-1])

    # Parity is the contract: same cells, same order, any pool width.
    for width, cells in parallel.items():
        assert cells == serial, f"parallel table (width {width}) diverged"

    rows = [
        {
            "workers": width,
            "wall_s": round(timings[width], 3),
            "speedup": round(timings[1] / timings[width], 2)
            if timings[width] > 0
            else float("inf"),
        }
        for width in (1, *WIDTHS)
    ]
    emit_bench_json({"table_parallel": rows})

    print()
    print(f"{'workers':>8} {'wall(s)':>9} {'speedup':>8}")
    for r in rows:
        print(f"{r['workers']:>8} {r['wall_s']:>9.3f} {r['speedup']:>7.2f}x")

    jobs = bench_jobs()
    if (os.cpu_count() or 1) >= 4 and (jobs is None or jobs >= 500):
        best = timings[1] / timings[4]
        assert best >= 2.0, f"4-worker table speedup regressed: {best:.2f}x"
