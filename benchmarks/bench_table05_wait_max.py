"""Table 5 — wait-time prediction using maximum run times (EASY-style)."""

from __future__ import annotations

import numpy as np

from _common import cell_metrics, emit_bench_json, print_wait_table, run_once, wait_time_rows


def test_table05_wait_prediction_max(benchmark):
    cells = run_once(benchmark, wait_time_rows, "max", ("fcfs", "lwf", "backfill"))
    print_wait_table("max", cells)
    emit_bench_json(
        {"table05": [c.as_row() for c in cells]}, metrics=cell_metrics(cells)
    )

    # Maximum run times are loose overestimates: predicted waits overshoot
    # badly — the paper's errors run 94-350% of the mean wait.  Require the
    # aggregate to exceed 50% and backfill (most estimate-sensitive) to
    # exceed 100% on average.
    pct = np.array([c.percent_of_mean_wait for c in cells])
    assert pct.mean() > 50.0
    bf = [c.percent_of_mean_wait for c in cells if c.algorithm == "Backfill"]
    assert np.mean(bf) > 100.0
