"""Table 5 — wait-time prediction using maximum run times (EASY-style)."""

from __future__ import annotations

import numpy as np

from _common import print_wait_table, wait_time_rows


def test_table05_wait_prediction_max(benchmark):
    cells = benchmark.pedantic(
        wait_time_rows,
        args=("max", ("fcfs", "lwf", "backfill")),
        rounds=1,
        iterations=1,
    )
    print_wait_table("max", cells)

    # Maximum run times are loose overestimates: predicted waits overshoot
    # badly — the paper's errors run 94-350% of the mean wait.  Require the
    # aggregate to exceed 50% and backfill (most estimate-sensitive) to
    # exceed 100% on average.
    pct = np.array([c.percent_of_mean_wait for c in cells])
    assert pct.mean() > 50.0
    bf = [c.percent_of_mean_wait for c in cells if c.algorithm == "Backfill"]
    assert np.mean(bf) > 100.0
