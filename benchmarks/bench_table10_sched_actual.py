"""Table 10 — scheduling performance with actual run times (the oracle
upper bound of §4)."""

from __future__ import annotations

from _common import print_scheduling_table, scheduling_rows


def test_table10_scheduling_actual(benchmark):
    cells = benchmark.pedantic(scheduling_rows, args=("actual",), rounds=1, iterations=1)
    print_scheduling_table("actual", cells)

    lwf = {c.workload: c for c in cells if c.algorithm == "LWF"}
    bf = {c.workload: c for c in cells if c.algorithm == "Backfill"}
    for w in lwf:
        # Paper Table 10: LWF posts lower mean waits than backfill on
        # every workload, at essentially equal utilization.
        assert lwf[w].mean_wait_minutes < bf[w].mean_wait_minutes
        assert abs(lwf[w].utilization_percent - bf[w].utilization_percent) < 8.0
