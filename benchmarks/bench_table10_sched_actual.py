"""Table 10 — scheduling performance with actual run times (the oracle
upper bound of §4)."""

from __future__ import annotations

from _common import cell_metrics, emit_bench_json, print_scheduling_table, run_once, scheduling_rows


def test_table10_scheduling_actual(benchmark):
    cells = run_once(benchmark, scheduling_rows, "actual")
    print_scheduling_table("actual", cells)
    emit_bench_json(
        {"table10": [c.as_row() for c in cells]}, metrics=cell_metrics(cells)
    )

    lwf = {c.workload: c for c in cells if c.algorithm == "LWF"}
    bf = {c.workload: c for c in cells if c.algorithm == "Backfill"}
    for w in lwf:
        # Paper Table 10: LWF posts lower mean waits than backfill on
        # every workload, at essentially equal utilization.
        assert lwf[w].mean_wait_minutes < bf[w].mean_wait_minutes
        assert abs(lwf[w].utilization_percent - bf[w].utilization_percent) < 8.0
