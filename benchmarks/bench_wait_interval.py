"""Engineering bench — vectorized many-worlds engine vs the scalar loop.

:func:`repro.waitpred.uncertainty.predict_wait_interval` now advances
all sampled worlds at once through the batched availability profile.
This bench times it against a verbatim replica of the per-world loop it
replaced, on the scenario the vectorization targets: a busy machine
(64 running jobs) with a queue of wide "capability" jobs that each need
most of the 256 nodes.  The scalar loop re-encodes the snapshot and
rebuilds the profile once per world; the batched engine pays those
costs once and advances a ``(samples, jobs)`` matrix.

Two guarantees are enforced on every run:

- **Parity** — the batched engine's ``wait_samples`` must be
  bit-identical to the scalar loop's for the same seed (the
  ``parity_failures`` emission must stay 0).
- **Throughput** — the batched engine must beat the scalar loop
  (soft floor) at every sample count; with ``REPRO_BENCH_STRICT_GAIN=1``
  the full >= 8x target at ``samples=300`` is asserted too (off by
  default because shared machines can swing wall-clock by ~30%).

``REPRO_WAIT_BENCH_SAMPLES`` (comma-separated, default ``30,100,300``)
controls the sweep — CI smoke runs a reduced ``30``-only sweep.
"""

from __future__ import annotations

import os
import time

import numpy as np

from _common import emit_bench_json, run_once
from repro.predictors.base import PointEstimator, Prediction, RuntimePredictor
from repro.scheduler.policies import BackfillPolicy
from repro.scheduler.simulator import QueuedJob, RunningJob, SystemSnapshot
from repro.utils.rng import rng_from_seed
from repro.waitpred.fast import predict_start_fast
from repro.waitpred.uncertainty import predict_wait_interval
from repro.workloads.job import Job

_Z90 = 1.645
_SEED = 7
_TOTAL = 256


class IntervalPredictor(RuntimePredictor):
    """Point-exact predictor with a 40% relative interval."""

    name = "bench-interval"
    elapsed_invariant = True

    def predict(self, job, elapsed=0.0, now=0.0):
        return Prediction(estimate=job.run_time, interval=0.4 * job.run_time)


def capability_snapshot(n_running=64, n_queued=8, seed=0):
    """Busy machine, queue of jobs each wanting 160-240 of 256 nodes."""
    rng = np.random.default_rng(seed)
    now = 50_000.0
    running, free = [], _TOTAL
    for i in range(n_running):
        nodes = min(int(rng.integers(1, max(2, _TOTAL // n_running))),
                    free - (n_running - i - 1))
        nodes = max(nodes, 1)
        free -= nodes
        start = float(now - rng.uniform(0, 30_000))
        running.append(RunningJob(
            Job(job_id=1000 + i, submit_time=start,
                run_time=float(rng.uniform(3_000, 80_000)), nodes=nodes,
                user="u", executable="x"),
            start,
        ))
    queued = [
        QueuedJob(Job(
            job_id=2000 + i,
            submit_time=float(now - rng.uniform(0, 5_000)),
            run_time=float(rng.uniform(1_000, 60_000)),
            nodes=int(rng.integers(160, 241)),
            user="u", executable="x",
        ))
        for i in range(n_queued)
    ]
    return SystemSnapshot(now=now, running=tuple(running),
                          queued=tuple(queued), total_nodes=_TOTAL)


def scalar_loop_interval(snapshot, policy, estimator, target_job_id,
                         *, samples, seed):
    """Verbatim replica of the pre-vectorization per-world loop."""
    rng = rng_from_seed(seed)
    now = snapshot.now
    params = {}
    for rj in snapshot.running:
        elapsed = rj.elapsed(now)
        point = estimator.predict(rj.job, elapsed, now)
        rich = estimator.predictor.predict(rj.job, elapsed, now)
        sigma = (rich.interval / _Z90) if rich is not None else 0.0
        params[rj.job_id] = (point, sigma)
    for qj in snapshot.queued:
        point = estimator.predict(qj.job, 0.0, now)
        rich = estimator.predictor.predict(qj.job, 0.0, now)
        sigma = (rich.interval / _Z90) if rich is not None else 0.0
        params[qj.job_id] = (point, sigma)
    waits = np.empty(samples)
    for s in range(samples):
        durations = {
            jid: max(point + sigma * float(rng.standard_normal()), 1e-6)
            if sigma > 0
            else max(point, 1e-6)
            for jid, (point, sigma) in params.items()
        }
        start = predict_start_fast(snapshot, policy, durations, target_job_id)
        waits[s] = start - now
    return waits


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _sample_counts():
    raw = os.environ.get("REPRO_WAIT_BENCH_SAMPLES", "30,100,300")
    return [int(tok) for tok in raw.split(",") if tok.strip()]


def test_wait_interval_engine_speedup(benchmark):
    snap = capability_snapshot()
    policy = BackfillPolicy()
    est = PointEstimator(IntervalPredictor())
    target = snap.queued[-1].job_id
    counts = _sample_counts()

    parity_failures = 0
    payload = {}
    lines = []
    for n in counts:
        iv = predict_wait_interval(
            snap, policy, est, target, samples=n, seed=_SEED
        )
        waits = scalar_loop_interval(
            snap, policy, est, target, samples=n, seed=_SEED
        )
        if not np.array_equal(np.asarray(iv.wait_samples), waits):
            parity_failures += 1
        batched_s = _best_of(
            lambda n=n: predict_wait_interval(
                snap, policy, est, target, samples=n, seed=_SEED
            ),
            repeats=5,
        )
        scalar_s = _best_of(
            lambda n=n: scalar_loop_interval(
                snap, policy, est, target, samples=n, seed=_SEED
            ),
            repeats=3,
        )
        gain = scalar_s / batched_s
        payload[f"samples_{n}"] = {
            "batched_wall_s": batched_s,
            "scalar_wall_s": scalar_s,
            "gain_x": gain,
            "median_wait": iv.median,
            "lo_wait": iv.lo,
            "hi_wait": iv.hi,
        }
        lines.append(
            f"samples={n:4d}: batched {batched_s * 1e3:7.2f} ms "
            f"vs scalar {scalar_s * 1e3:8.2f} ms ({gain:5.1f}x)"
        )
        # The vectorized engine must never regress to scalar speed.
        assert gain > 1.5, f"samples={n}: gain {gain:.2f}x below floor"
        if n >= 300 and os.environ.get("REPRO_BENCH_STRICT_GAIN") == "1":
            assert gain >= 8.0, (
                f"samples={n}: gain {gain:.2f}x below the 8x target"
            )

    assert parity_failures == 0

    largest = max(counts)
    run_once(
        benchmark,
        predict_wait_interval,
        snap, policy, est, target, samples=largest, seed=_SEED,
    )
    print("\nmany-worlds wait interval, backfill, busy 256-node machine:")
    for line in lines:
        print(f"  {line}")
    emit_bench_json({
        "wait_interval": dict(payload, parity_failures=parity_failures)
    })
