"""Table 3 — Gibbons' fixed template hierarchy.

Verifies the implemented Gibbons predictor walks exactly the paper's six
template/predictor combinations, in order, by probing which level serves
each prediction.
"""

from __future__ import annotations

from repro.core.tables import format_table
from repro.predictors.gibbons import GibbonsPredictor
from repro.workloads.job import Job


def _probe():
    """Drive the predictor through states that expose each level."""

    def job(jid, user, exe, nodes, rt, submit=0.0):
        return Job(
            job_id=jid, submit_time=submit, run_time=rt, nodes=nodes,
            user=user, executable=exe,
        )

    p = GibbonsPredictor()
    hits: list[tuple[str, str]] = []
    # Level 1: (u,e,n,rtime) mean.
    p.on_finish(job(1, "u1", "e1", 4, 100.0), 0.0)
    p.on_finish(job(2, "u1", "e1", 4, 120.0), 0.0)
    hits.append(("(u,e,n,rtime) mean", p.predict(job(90, "u1", "e1", 4, 0.0)).source))
    # Level 2: (u,e) regression — node bin empty, two bins populated.
    p.on_finish(job(3, "u1", "e1", 32, 900.0), 0.0)
    p.on_finish(job(4, "u1", "e1", 32, 950.0), 0.0)
    hits.append(("(u,e) regression", p.predict(job(91, "u1", "e1", 16, 0.0)).source))
    # Level 3: (e,n,rtime) mean — new user, known executable.
    hits.append(("(e,n,rtime) mean", p.predict(job(92, "uX", "e1", 4, 0.0)).source))
    # Level 4: (e) regression — new user, known executable, empty bin.
    hits.append(("(e) regression", p.predict(job(93, "uX", "e1", 16, 0.0)).source))
    # Level 5: (n,rtime) mean — unknown user and executable.
    hits.append(("(n,rtime) mean", p.predict(job(94, "uX", "eX", 4, 0.0)).source))
    # Level 6: () regression — unknown identity, empty node bin.
    hits.append(("() regression", p.predict(job(95, "uX", "eX", 16, 0.0)).source))
    return hits


def test_table03_gibbons_hierarchy(benchmark):
    hits = benchmark.pedantic(_probe, rounds=1, iterations=1)
    expected = [
        "gibbons:ue:mean",
        "gibbons:ue:regression",
        "gibbons:e:mean",
        "gibbons:e:regression",
        "gibbons:():mean",
        "gibbons:():regression",
    ]
    rows = [
        {"Paper template": name, "Served by": src, "Expected": exp}
        for (name, src), exp in zip(hits, expected)
    ]
    print()
    print(format_table(rows, title="Table 3 — Gibbons' template order"))
    assert [src for _, src in hits] == expected
