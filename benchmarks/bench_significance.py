"""Statistical guard — are the headline wait-time gains real?

The paper reports point differences; with heavy-tailed waits a point
difference on one trace can be luck.  This bench puts paired bootstrap
confidence intervals on the two claims the other benches assert:

1. per-job wait under Smith-driven backfill vs. max-driven backfill
   (ANL): the mean difference should favour Smith with an interval
   excluding zero;
2. per-job wait-prediction |error| under Smith vs. max (ANL backfill):
   Smith's improvement should likewise be significant.
"""

from __future__ import annotations

import numpy as np

from repro.core.experiment import run_scheduling_experiment, run_wait_time_experiment
from repro.core.tables import format_table
from repro.stats.bootstrap import bootstrap_mean_difference

from _common import bench_trace


def _run():
    trace = bench_trace("ANL")
    # 1. scheduling: per-job waits under two predictors (aligned by job).
    _, res_smith = run_scheduling_experiment(trace, "backfill", "smith")
    _, res_max = run_scheduling_experiment(trace, "backfill", "max")
    ids = sorted(r.job_id for r in res_smith.records)
    w_smith = np.array([res_smith[i].wait_time for i in ids]) / 60.0
    w_max = np.array([res_max[i].wait_time for i in ids]) / 60.0
    sched_iv = bootstrap_mean_difference(w_max, w_smith, seed=0)

    # 2. wait prediction: aggregate |error| under two predictors.
    cell_s, _, _ = run_wait_time_experiment(trace, "backfill", "smith")
    cell_m, _, _ = run_wait_time_experiment(trace, "backfill", "max")
    return sched_iv, (cell_s, cell_m)


def test_significance_of_headline_gains(benchmark):
    sched_iv, (cell_s, cell_m) = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        {
            "Claim": "backfill wait, max - smith (min/job)",
            "Estimate": round(sched_iv.estimate, 2),
            "95% CI": f"[{sched_iv.lo:.2f}, {sched_iv.hi:.2f}]",
            "Significant": "yes" if sched_iv.excludes_zero() else "no",
        },
        {
            "Claim": "wait-pred error, smith vs max (min)",
            "Estimate": round(cell_m.mean_error_minutes - cell_s.mean_error_minutes, 2),
            "95% CI": "—",
            "Significant": "(see estimate)",
        },
    ]
    print()
    print(format_table(rows, title="Paired bootstrap on the ANL headline claims"))
    # Smith's scheduling benefit over maxima is positive and significant.
    assert sched_iv.estimate > 0.0
    assert sched_iv.excludes_zero()
    # And the wait-prediction improvement is large in absolute terms.
    assert cell_s.mean_error_minutes < cell_m.mean_error_minutes