"""Table 13 — scheduling performance with Gibbons' predictor."""

from __future__ import annotations

from _common import cell_metrics, emit_bench_json, print_scheduling_table, run_once, scheduling_rows


def test_table13_scheduling_gibbons(benchmark):
    cells = run_once(benchmark, scheduling_rows, "gibbons")
    print_scheduling_table("gibbons", cells)
    emit_bench_json(
        {"table13": [c.as_row() for c in cells]}, metrics=cell_metrics(cells)
    )
    assert len(cells) == 8
    for c in cells:
        assert 0.0 < c.utilization_percent <= 100.0
        assert c.mean_wait_minutes >= 0.0
