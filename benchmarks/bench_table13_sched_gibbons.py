"""Table 13 — scheduling performance with Gibbons' predictor."""

from __future__ import annotations

from _common import print_scheduling_table, scheduling_rows


def test_table13_scheduling_gibbons(benchmark):
    cells = benchmark.pedantic(
        scheduling_rows, args=("gibbons",), rounds=1, iterations=1
    )
    print_scheduling_table("gibbons", cells)
    assert len(cells) == 8
    for c in cells:
        assert 0.0 < c.utilization_percent <= 100.0
        assert c.mean_wait_minutes >= 0.0
