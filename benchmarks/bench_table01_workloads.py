"""Table 1 — characteristics of the four workloads.

Regenerates the paper's workload-characterization table from the
synthetic traces and checks the calibrated parameters (machine sizes,
request counts at full scale, mean run times) against Table 1.
"""

from __future__ import annotations

from repro.core.paper_reference import TABLE1_WORKLOADS
from repro.core.tables import format_table
from repro.workloads.archive import PAPER_WORKLOADS
from repro.workloads.stats import summarize

from _common import bench_traces


def _characterize():
    return [summarize(t) for t in bench_traces()]


def test_table01_workload_characteristics(benchmark):
    summaries = benchmark.pedantic(_characterize, rounds=1, iterations=1)
    rows = []
    for s in summaries:
        nodes, requests, mean_rt = TABLE1_WORKLOADS[s.name]
        rows.append(
            {
                "Workload": s.name,
                "Nodes": s.total_nodes,
                "Requests": s.n_jobs,
                "Mean run (min)": round(s.mean_run_time_minutes, 2),
                "Offered load": round(s.offered_load, 3),
                "Paper nodes": nodes,
                "Paper requests": requests,
                "Paper mean run": mean_rt,
            }
        )
    print()
    print(format_table(rows, title="Table 1 — workload characteristics"))

    for s in summaries:
        nodes, requests, mean_rt = TABLE1_WORKLOADS[s.name]
        assert s.total_nodes == nodes
        # Full-scale specs carry the exact request counts.
        assert PAPER_WORKLOADS[s.name].n_jobs == requests
        # Mean run time within a factor ~1.5 of Table 1 after clipping.
        assert 0.6 * mean_rt <= s.mean_run_time_minutes <= 1.5 * mean_rt

    # Relative ordering of machine loads: ANL is the hot machine.
    loads = {s.name: s.offered_load for s in summaries}
    assert loads["ANL"] == max(loads.values())


def test_table02_recorded_fields(benchmark):
    """Table 2 — every trace records exactly its column of characteristics."""
    from repro.workloads.fields import WORKLOAD_FIELDS

    def check():
        report = []
        for trace in bench_traces():
            catalog = WORKLOAD_FIELDS[trace.name]
            job = trace[0]
            observed = {
                "t": job.job_type is not None,
                "q": job.queue is not None,
                "c": job.job_class is not None,
                "u": job.user is not None,
                "s": job.script is not None,
                "e": job.executable is not None,
                "a": job.arguments is not None or "a" not in catalog,
                "na": job.network_adaptor is not None,
            }
            for abbr, present in observed.items():
                if abbr == "a":
                    continue  # arguments sampled per-job; checked in tests
                assert present == (abbr in catalog), (trace.name, abbr)
            report.append(
                {
                    "Workload": trace.name,
                    "Fields": ", ".join(sorted(catalog.available)),
                    "Max run time": "Y" if catalog.has_max_run_time else "",
                }
            )
        return report

    report = benchmark.pedantic(check, rounds=1, iterations=1)
    print()
    print(format_table(report, title="Table 2 — recorded characteristics"))
