"""Engineering bench — analytic wait-prediction shortcut vs. event loop.

The only benchmark in the suite that measures *time* rather than
reproducing a table: the FCFS shortcut of :mod:`repro.waitpred.fast`
must (a) produce identical predictions and (b) be substantially faster
on a congested queue, since wait-time experiments invoke it once per
submission.
"""

from __future__ import annotations

import time

from repro.scheduler.policies import FCFSPolicy
from repro.scheduler.simulator import (
    QueuedJob,
    RunningJob,
    SystemSnapshot,
    forward_simulate,
)
from repro.waitpred.fast import fcfs_predicted_start
from repro.workloads.job import Job


def _congested_snapshot(queue_len=150, total_nodes=64):
    running = tuple(
        RunningJob(
            Job(job_id=i, submit_time=0.0, run_time=1.0, nodes=4), start_time=0.0
        )
        for i in range(1, 9)
    )
    queued = tuple(
        QueuedJob(
            Job(
                job_id=100 + i,
                submit_time=float(i),
                run_time=1.0,
                nodes=1 + (i * 7) % 32,
            )
        )
        for i in range(queue_len)
    )
    durations = {rj.job_id: 3600.0 for rj in running}
    durations.update(
        {qj.job_id: 300.0 + (qj.job_id % 17) * 120.0 for qj in queued}
    )
    target = queued[-1].job_id
    snap = SystemSnapshot(
        now=float(queue_len),
        running=running,
        queued=queued,
        total_nodes=total_nodes,
    )
    return snap, durations, target


def _time(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def test_fastpath_speedup(benchmark):
    snap, durations, target = _congested_snapshot()

    fast_result, fast_t = _time(
        lambda: fcfs_predicted_start(snap, durations, target)
    )
    slow_result, slow_t = _time(
        lambda: forward_simulate(snap, FCFSPolicy(), durations, target)
    )
    benchmark.pedantic(
        lambda: fcfs_predicted_start(snap, durations, target),
        rounds=3,
        iterations=5,
    )
    print(
        f"\nFCFS wait prediction, 150-deep queue: analytic {fast_t * 1e3:.2f} ms "
        f"vs event-driven {slow_t * 1e3:.2f} ms ({slow_t / fast_t:.1f}x)"
    )
    assert fast_result == slow_result or abs(fast_result - slow_result) < 1e-3
    # The shortcut must never be a slowdown (timing noise tolerance 20%).
    assert fast_t < slow_t * 1.2
