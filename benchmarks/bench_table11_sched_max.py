"""Table 11 — scheduling performance with maximum run times.

Also checks the paper's §4 observation that estimate quality has minimal
effect on utilization: utilizations here must track Table 10's.
"""

from __future__ import annotations

from _common import cell_metrics, emit_bench_json, print_scheduling_table, run_once, scheduling_rows


def _run():
    return scheduling_rows("max"), scheduling_rows("actual")


def test_table11_scheduling_max(benchmark):
    mx, oracle = run_once(benchmark, _run)
    print_scheduling_table("max", mx)
    emit_bench_json(
        {"table11": [c.as_row() for c in mx]}, metrics=cell_metrics(mx)
    )

    oracle_by_key = {(c.workload, c.algorithm): c for c in oracle}
    for c in mx:
        ref = oracle_by_key[(c.workload, c.algorithm)]
        # Utilization invariance across predictors (paper §4).
        assert abs(c.utilization_percent - ref.utilization_percent) < 6.0
    # Where waits are substantial the oracle generally wins; on the
    # near-idle workloads sub-minute differences are noise (the paper
    # itself reports one cell where maxima win by 6%).  Claim only the
    # loaded cells: among cells whose oracle wait exceeds 5 minutes,
    # maxima must be no better than ~oracle in the majority, and the
    # high-load workload's backfill must be strictly worse.
    loaded = [
        (c, oracle_by_key[(c.workload, c.algorithm)])
        for c in mx
        if oracle_by_key[(c.workload, c.algorithm)].mean_wait_minutes > 5.0
    ]
    assert loaded, "expected at least one loaded cell"
    worse = [c.mean_wait_minutes >= 0.94 * ref.mean_wait_minutes for c, ref in loaded]
    assert sum(worse) >= (len(worse) + 1) // 2
    anl_bf = {c.algorithm: c for c in mx if c.workload == "ANL"}["Backfill"]
    anl_bf_oracle = oracle_by_key[("ANL", "Backfill")]
    assert anl_bf.mean_wait_minutes > anl_bf_oracle.mean_wait_minutes
