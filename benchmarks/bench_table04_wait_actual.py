"""Table 4 — wait-time prediction using actual run times.

The paper's built-in error study: even a perfect run-time oracle cannot
foresee later arrivals.  FCFS is omitted (its error is identically zero,
which bench_table05/06 exercise implicitly); LWF shows a substantial
built-in error, backfill a small one.
"""

from __future__ import annotations

import numpy as np

from _common import cell_metrics, emit_bench_json, print_wait_table, run_once, wait_time_rows


def test_table04_wait_prediction_actual(benchmark):
    cells = run_once(benchmark, wait_time_rows, "actual", ("lwf", "backfill"))
    print_wait_table("actual", cells)
    emit_bench_json(
        {"table04": [c.as_row() for c in cells]}, metrics=cell_metrics(cells)
    )

    lwf = {c.workload: c for c in cells if c.algorithm == "LWF"}
    bf = {c.workload: c for c in cells if c.algorithm == "Backfill"}
    # Backfill's built-in error is far below LWF's on every workload
    # (paper: 3-10% vs 34-43%).
    for w in lwf:
        assert bf[w].percent_of_mean_wait < lwf[w].percent_of_mean_wait
    assert np.mean([c.percent_of_mean_wait for c in bf.values()]) < 35.0
