"""Ablation — which template ingredients carry the Smith predictor.

DESIGN.md calls out four design choices of the template machinery:
identity characteristics, node-range refinement, relative (ratio to the
user's maximum) data, and bounded history.  This bench knocks each out
and scores the replay error, plus a warm-start variant quantifying the
§2.1 ramp-up remark.
"""

from __future__ import annotations

from repro.core.tables import format_table
from repro.predictors.base import warm_start
from repro.predictors.replay import replay_prediction_error
from repro.predictors.smith import SmithPredictor
from repro.predictors.templates import Template, default_templates
from repro.workloads.transform import head

from _common import bench_trace


def _variants(trace):
    has_max = any(j.max_run_time is not None for j in trace)
    full = default_templates(trace.available_fields, has_max_run_time=has_max)
    return {
        "full default set": full,
        "global mean only": [Template()],
        "no node ranges": [
            t for t in full if t.node_range_size is None
        ],
        "no relative data": [t for t in full if not t.relative],
        "single (u) template": [Template(characteristics=("u",))],
    }


def _run():
    trace = bench_trace("ANL")
    rows = []
    scores = {}
    for label, templates in _variants(trace).items():
        report = replay_prediction_error(trace, SmithPredictor(templates))
        scores[label] = report.mean_abs_error
        rows.append(
            {
                "Variant": label,
                "Templates": len(templates),
                "Error (min)": round(report.mean_abs_error_minutes, 2),
                "% predicted": round(100.0 * report.n_predicted / report.n_jobs),
            }
        )
    # Warm start: train on the first 30%, score the rest.
    split = max(len(trace) // 3, 1)
    train = head(trace, split)
    test = trace.filter(lambda j: j.submit_time > train[len(train) - 1].submit_time)
    has_max = any(j.max_run_time is not None for j in trace)
    tpl = default_templates(trace.available_fields, has_max_run_time=has_max)
    cold = replay_prediction_error(test, SmithPredictor(tpl))
    warm = replay_prediction_error(
        test, warm_start(SmithPredictor(tpl), train)
    )
    rows.append(
        {
            "Variant": "cold start (last 2/3)",
            "Templates": len(tpl),
            "Error (min)": round(cold.mean_abs_error_minutes, 2),
            "% predicted": round(100.0 * cold.n_predicted / cold.n_jobs),
        }
    )
    rows.append(
        {
            "Variant": "warm start (last 2/3)",
            "Templates": len(tpl),
            "Error (min)": round(warm.mean_abs_error_minutes, 2),
            "% predicted": round(100.0 * warm.n_predicted / warm.n_jobs),
        }
    )
    return rows, scores, cold, warm


def test_ablation_template_ingredients(benchmark):
    rows, scores, cold, warm = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Smith template ablation (ANL)"))
    # Identity characteristics are the core signal: the full set must
    # beat the bare global mean decisively.
    assert scores["full default set"] < scores["global mean only"]
    # Warm starting can only help coverage, and it must not hurt error
    # materially (paper §2.1's training-set remark).
    assert warm.n_predicted >= cold.n_predicted
    assert warm.mean_abs_error <= cold.mean_abs_error * 1.10
