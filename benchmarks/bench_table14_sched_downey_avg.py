"""Table 14 — scheduling performance with Downey's conditional average."""

from __future__ import annotations

from _common import cell_metrics, emit_bench_json, print_scheduling_table, run_once, scheduling_rows


def test_table14_scheduling_downey_average(benchmark):
    cells = run_once(benchmark, scheduling_rows, "downey-average")
    print_scheduling_table("downey-average", cells)
    emit_bench_json(
        {"table14": [c.as_row() for c in cells]}, metrics=cell_metrics(cells)
    )
    assert len(cells) == 8
    for c in cells:
        assert 0.0 < c.utilization_percent <= 100.0
        assert c.mean_wait_minutes >= 0.0
