"""Table 15 — scheduling performance with Downey's conditional median.

Also checks the §4 ANL claim: on the highest-load workload the Smith
predictor posts lower mean waits than the Downey predictors.
"""

from __future__ import annotations

from _common import cell_metrics, emit_bench_json, print_scheduling_table, run_once, scheduling_rows


def _run():
    return scheduling_rows("downey-median"), scheduling_rows("smith")


def test_table15_scheduling_downey_median(benchmark):
    med, smith = run_once(benchmark, _run)
    print_scheduling_table("downey-median", med)
    emit_bench_json(
        {"table15": [c.as_row() for c in med]}, metrics=cell_metrics(med)
    )

    smith_anl = {
        c.algorithm: c.mean_wait_minutes for c in smith if c.workload == "ANL"
    }
    med_anl = {
        c.algorithm: c.mean_wait_minutes for c in med if c.workload == "ANL"
    }
    # Paper §4: 13-50% lower ANL mean waits with Smith vs the others;
    # require Smith to be at least competitive (within 10%) per algorithm
    # and strictly better for at least one.
    assert all(smith_anl[a] <= 1.1 * med_anl[a] for a in smith_anl)
    assert any(smith_anl[a] < med_anl[a] for a in smith_anl)
