"""Shim for environments without the ``wheel`` package.

``pip install -e .`` needs to build a wheel for the editable install; on
fully offline machines without the ``wheel`` distribution that fails, and
``python setup.py develop`` (which this file enables) is the fallback.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
